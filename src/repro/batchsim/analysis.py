"""Analysis of simulated batch logs — the Fig. 2 pipeline from first
principles.

The paper fits ``wait(R) = alpha R + gamma`` to Intrepid logs.  Here the
same pipeline runs on logs produced by our own backfilling simulator: group
finished jobs by requested runtime, average each group's wait, and fit the
affine model.  The positive slope is *emergent* — EASY backfilling favours
short requests — not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batchsim.engine import SimulationResult
from repro.platforms.waittime import QueueLog, WaitTimeModel, fit_wait_time

__all__ = ["simulation_queue_log", "wait_model_from_simulation", "QueueStatistics"]


@dataclass(frozen=True)
class QueueStatistics:
    """Aggregate queue metrics of a simulation."""

    mean_wait: float
    median_wait: float
    p95_wait: float
    utilization: float
    kill_fraction: float

    @classmethod
    def from_result(cls, result: SimulationResult) -> "QueueStatistics":
        waits = np.array(
            [j.wait_time for j in result.jobs if j.start_time is not None]
        )
        if waits.size == 0:
            raise ValueError("no job ever started")
        return cls(
            mean_wait=float(waits.mean()),
            median_wait=float(np.median(waits)),
            p95_wait=float(np.quantile(waits, 0.95)),
            utilization=result.utilization(),
            kill_fraction=len(result.killed_jobs) / len(result.jobs),
        )


def simulation_queue_log(result: SimulationResult) -> QueueLog:
    """Convert a simulation into the (requested, wait) log Fig. 2 consumes."""
    rows = [
        (j.requested_runtime, j.wait_time)
        for j in result.jobs
        if j.start_time is not None
    ]
    if not rows:
        raise ValueError("simulation produced no started jobs")
    requested, waits = map(np.asarray, zip(*rows))
    return QueueLog(requested_hours=requested.astype(float),
                    wait_hours=waits.astype(float))


def wait_model_from_simulation(
    result: SimulationResult, n_groups: int = 20
) -> WaitTimeModel:
    """Affine wait-time fit on the simulated log (the Fig. 2 green line)."""
    return fit_wait_time(simulation_queue_log(result), n_groups=n_groups)
