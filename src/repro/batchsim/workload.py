"""Synthetic workload generation for the batch simulator.

Models the statistical structure HPC workload studies report (Feitelson [9],
Section 6 of the paper): Poisson arrivals, LogNormal actual runtimes,
power-of-two-ish node counts, and *requested* runtimes that over-estimate
the actual runtime by a user-dependent factor (users pad their requests to
avoid the wall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.batchsim.job import Job
from repro.utils.rng import SeedLike, as_generator

__all__ = ["WorkloadSpec", "generate_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic batch workload.

    ``arrival_rate`` is jobs per hour; runtimes are in hours.  Requested
    runtimes are ``actual * Uniform(1, 1 + max_overestimate)`` capped at
    ``max_request``, matching the user over-estimation behaviour documented
    in [17].
    """

    n_jobs: int = 1000
    arrival_rate: float = 20.0
    runtime_log_mean: float = -0.5  # LogNormal mu of actual runtime (hours)
    runtime_log_sigma: float = 1.0
    max_nodes_exp: int = 6  # node counts drawn from {1, 2, 4, ..., 2^exp}
    max_overestimate: float = 1.0
    max_request: float = 48.0
    #: Fraction of users who under-request (their jobs hit the wall and are
    #: killed — the failure mode [17] documents).
    underestimate_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("need at least one job")
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.runtime_log_sigma <= 0:
            raise ValueError("runtime log-sigma must be positive")
        if self.max_nodes_exp < 0:
            raise ValueError("max_nodes_exp must be nonnegative")
        if self.max_overestimate < 0:
            raise ValueError("max_overestimate must be nonnegative")
        if self.max_request <= 0:
            raise ValueError("max_request must be positive")
        if not (0.0 <= self.underestimate_fraction < 1.0):
            raise ValueError("underestimate_fraction must be in [0, 1)")


def generate_workload(spec: WorkloadSpec, seed: SeedLike = None) -> List[Job]:
    """Draw a workload according to ``spec``."""
    rng = as_generator(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / spec.arrival_rate, size=spec.n_jobs))
    actual = rng.lognormal(spec.runtime_log_mean, spec.runtime_log_sigma,
                           size=spec.n_jobs)
    # Node counts: power-of-two sizes with a bias toward small jobs.
    exps = rng.geometric(p=0.45, size=spec.n_jobs) - 1
    nodes = np.power(2, np.minimum(exps, spec.max_nodes_exp))
    pad = rng.uniform(1.0, 1.0 + spec.max_overestimate, size=spec.n_jobs)
    requested = np.minimum(actual * pad, spec.max_request)
    requested = np.maximum(requested, actual)  # cap must not under-request
    if spec.underestimate_fraction > 0.0:
        under = rng.random(spec.n_jobs) < spec.underestimate_fraction
        # Under-requesters ask for 50-95% of their actual runtime: the job
        # hits the wall and is killed by the scheduler.
        requested = np.where(
            under, actual * rng.uniform(0.5, 0.95, size=spec.n_jobs), requested
        )

    return [
        Job(
            job_id=i,
            submit_time=float(arrivals[i]),
            nodes=int(nodes[i]),
            requested_runtime=float(requested[i]),
            actual_runtime=float(actual[i]),
        )
        for i in range(spec.n_jobs)
    ]
