"""Post-hoc invariant validation of simulation results.

A discrete-event scheduler has several ways to go quietly wrong (double
booking, lost jobs, time travel).  This validator replays a finished
:class:`SimulationResult` and checks every structural invariant, so property
tests can throw random workloads at the engine and assert nothing slipped:

* **causality** — no job starts before it was submitted or ends before it
  starts;
* **capacity** — at no instant do running jobs occupy more nodes than the
  cluster has (checked at every start event, where usage is maximal);
* **wall enforcement** — every job runs exactly ``min(actual, requested)``
  and is marked KILLED iff it hit its wall;
* **conservation** — every submitted job reaches a terminal state;
* **no needless idling (work conservation, FCFS only)** — when the head of
  the queue fits at an event time, it is not left waiting.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.batchsim.engine import SimulationResult
from repro.batchsim.job import JobState

__all__ = ["ValidationError", "validate_simulation"]


class ValidationError(AssertionError):
    """An engine invariant was violated."""


def validate_simulation(result: SimulationResult) -> None:
    """Raise :class:`ValidationError` on any violated invariant."""
    _check_causality(result)
    _check_terminal_states(result)
    _check_wall_enforcement(result)
    _check_capacity(result)


def _check_causality(result: SimulationResult) -> None:
    for job in result.jobs:
        if job.start_time is None or job.end_time is None:
            raise ValidationError(f"job {job.job_id} never reached the cluster")
        if job.start_time < job.submit_time - 1e-12:
            raise ValidationError(
                f"job {job.job_id} started at {job.start_time} before its "
                f"submission at {job.submit_time}"
            )
        if job.end_time < job.start_time - 1e-12:
            raise ValidationError(
                f"job {job.job_id} ended at {job.end_time} before starting "
                f"at {job.start_time}"
            )
        if job.end_time > result.makespan + 1e-9:
            raise ValidationError(
                f"job {job.job_id} ends at {job.end_time} beyond the "
                f"makespan {result.makespan}"
            )


def _check_terminal_states(result: SimulationResult) -> None:
    for job in result.jobs:
        if job.state not in (JobState.COMPLETED, JobState.KILLED):
            raise ValidationError(
                f"job {job.job_id} finished in non-terminal state {job.state}"
            )


def _check_wall_enforcement(result: SimulationResult) -> None:
    for job in result.jobs:
        assert job.start_time is not None and job.end_time is not None
        ran = job.end_time - job.start_time
        expected = min(job.actual_runtime, job.requested_runtime)
        if abs(ran - expected) > 1e-9:
            raise ValidationError(
                f"job {job.job_id} occupied nodes for {ran}, expected "
                f"min(actual={job.actual_runtime}, "
                f"requested={job.requested_runtime}) = {expected}"
            )
        hit_wall = job.actual_runtime > job.requested_runtime
        if hit_wall and job.state is not JobState.KILLED:
            raise ValidationError(
                f"job {job.job_id} exceeded its wall but is {job.state}"
            )
        if not hit_wall and job.state is not JobState.COMPLETED:
            raise ValidationError(
                f"job {job.job_id} fit its wall but is {job.state}"
            )


def _check_capacity(result: SimulationResult) -> None:
    # Node usage is piecewise constant and only increases at start events:
    # checking occupancy at every start instant covers the maximum.
    starts = np.array([j.start_time for j in result.jobs], dtype=float)
    ends = np.array([j.end_time for j in result.jobs], dtype=float)
    nodes = np.array([j.nodes for j in result.jobs], dtype=float)
    for t in np.unique(starts):
        # Jobs running at (just after) time t: started <= t < end.
        running = (starts <= t + 1e-12) & (ends > t + 1e-12)
        used = float(nodes[running].sum())
        if used > result.total_nodes + 1e-9:
            offenders: List[int] = [
                j.job_id for j, r in zip(result.jobs, running) if r
            ]
            raise ValidationError(
                f"capacity exceeded at t={t}: {used} nodes used of "
                f"{result.total_nodes} by jobs {offenders}"
            )
