"""Discrete-event batch-queue simulator (the substrate behind Fig. 2).

Jobs with requested/actual runtimes and node counts flow through a cluster
under FCFS or EASY backfilling; the emergent wait-time-vs-requested-runtime
relation is grouped and fitted exactly like the paper's Intrepid analysis.
"""

from repro.batchsim.analysis import (
    QueueStatistics,
    simulation_queue_log,
    wait_model_from_simulation,
)
from repro.batchsim.cluster import Cluster
from repro.batchsim.engine import SimulationResult, simulate
from repro.batchsim.job import Job, JobState
from repro.batchsim.reservation_flow import (
    FlowResult,
    StochasticJobRun,
    run_reservation_flow,
)
from repro.batchsim.schedulers import EasyBackfillScheduler, FCFSScheduler, Scheduler
from repro.batchsim.workload import WorkloadSpec, generate_workload

__all__ = [
    "Job",
    "JobState",
    "Cluster",
    "Scheduler",
    "FCFSScheduler",
    "EasyBackfillScheduler",
    "simulate",
    "SimulationResult",
    "WorkloadSpec",
    "generate_workload",
    "FlowResult",
    "StochasticJobRun",
    "run_reservation_flow",
    "QueueStatistics",
    "simulation_queue_log",
    "wait_model_from_simulation",
]
