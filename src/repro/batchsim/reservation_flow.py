"""In-vivo validation: reservation strategies running *inside* the queue.

The paper's NEUROHPC analysis assumes the affine wait model and evaluates
strategies against it analytically.  This module closes the loop: stochastic
jobs flow through the actual (simulated) batch queue, each job's reservation
requests come from a strategy's sequence, and a job killed at its wall is
*resubmitted* with the next reservation — exactly the user behaviour the
paper's Section 1 describes.  The realized turnaround (wait + execution +
wait + ... until success) can then be compared across strategies with all
queueing effects included: contention, backfilling, and the feedback of
resubmissions onto the queue itself (longer requests wait longer, failed
requests come back and congest the queue further).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.batchsim.engine import SimulationResult, simulate
from repro.batchsim.job import Job, JobState
from repro.batchsim.schedulers import Scheduler
from repro.core.sequence import ReservationSequence
from repro.utils.rng import SeedLike, as_generator

__all__ = ["StochasticJobRun", "FlowResult", "run_reservation_flow"]


@dataclass
class StochasticJobRun:
    """One logical stochastic job and the attempts it made."""

    logical_id: int
    actual_runtime: float
    first_submit: float
    attempts: List[Job] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].state is JobState.COMPLETED

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def turnaround(self) -> float:
        """First submission to final completion."""
        if not self.completed:
            raise ValueError(f"logical job {self.logical_id} never completed")
        assert self.attempts[-1].end_time is not None
        return self.attempts[-1].end_time - self.first_submit

    @property
    def total_wait(self) -> float:
        return sum(a.wait_time for a in self.attempts if a.start_time is not None)


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a reservation-strategy flow through the simulator."""

    runs: List[StochasticJobRun]
    simulation: SimulationResult
    strategy_name: str

    def mean_turnaround(self) -> float:
        return float(np.mean([r.turnaround for r in self.runs]))

    def mean_attempts(self) -> float:
        return float(np.mean([r.n_attempts for r in self.runs]))

    def p95_turnaround(self) -> float:
        return float(np.quantile([r.turnaround for r in self.runs], 0.95))


def run_reservation_flow(
    strategy,
    distribution,
    n_jobs: int,
    total_nodes: int,
    arrival_rate: float,
    nodes_per_job: int = 1,
    scheduler: Optional[Scheduler] = None,
    seed: SeedLike = None,
    max_attempts: int = 60,
    cost_model=None,
) -> FlowResult:
    """Run ``n_jobs`` stochastic jobs through the queue under ``strategy``.

    Every logical job draws an execution time from ``distribution``; its
    reservation lengths follow the strategy's sequence (shared across jobs —
    they are i.i.d. from the same law).  Kills trigger resubmission at the
    kill time with the next reservation length.
    """
    if n_jobs < 1:
        raise ValueError("need at least one job")
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    rng = as_generator(seed)
    runtimes = distribution.rvs(n_jobs, seed=rng)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_jobs))

    if cost_model is None:
        cost_model = _default_cost_model()
    # One shared sequence prefix, extended to cover the worst job up front.
    sequence: ReservationSequence = strategy.sequence(distribution, cost_model)
    sequence.ensure_covers(float(runtimes.max()))
    lengths = sequence.values

    runs = [
        StochasticJobRun(
            logical_id=i,
            actual_runtime=float(runtimes[i]),
            first_submit=float(arrivals[i]),
        )
        for i in range(n_jobs)
    ]
    # Physical job ids encode (logical, attempt): id = logical * max_attempts + k.
    initial: List[Job] = []
    for run in runs:
        job = Job(
            job_id=run.logical_id * max_attempts,
            submit_time=run.first_submit,
            nodes=nodes_per_job,
            requested_runtime=float(lengths[0]),
            actual_runtime=run.actual_runtime,
        )
        run.attempts.append(job)
        initial.append(job)

    def on_finish(job: Job, now: float):
        if job.state is not JobState.KILLED:
            return ()
        logical = job.job_id // max_attempts
        attempt = job.job_id % max_attempts + 1
        if attempt >= max_attempts:
            raise RuntimeError(
                f"logical job {logical} exhausted {max_attempts} attempts"
            )
        run = runs[logical]
        nxt = Job(
            job_id=logical * max_attempts + attempt,
            submit_time=now,
            nodes=job.nodes,
            requested_runtime=float(lengths[attempt]),
            actual_runtime=run.actual_runtime,
        )
        run.attempts.append(nxt)
        return (nxt,)

    result = simulate(
        initial, total_nodes=total_nodes, scheduler=scheduler, on_finish=on_finish
    )
    for run in runs:
        if not run.completed:
            raise RuntimeError(
                f"logical job {run.logical_id} (runtime {run.actual_runtime}) "
                "did not complete"
            )
    return FlowResult(
        runs=runs,
        simulation=result,
        strategy_name=getattr(strategy, "name", type(strategy).__name__),
    )


def _default_cost_model():
    """Strategies need *a* cost model to shape their sequences; inside the
    simulator the realized cost is queueing time, so the default is the
    paper's NEUROHPC parameters (the model this flow validates)."""
    from repro.core.cost import CostModel

    return CostModel.neurohpc()
