"""Small numeric helpers shared across the library.

These are deliberately dependency-light: the heavy lifting (quadrature,
special functions) lives in :mod:`scipy`; what is collected here is the glue
the reservation algorithms need — monotonicity checks, probability clipping,
grid minimization and stable tail integration.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

#: Default tolerance used when comparing reservation lengths for strict
#: monotonicity.  Reservation grids are built from quantile functions whose
#: outputs can collide at double precision in flat regions of the CDF.
MONOTONE_ATOL = 1e-12


def clip_probability(p: np.ndarray | float) -> np.ndarray | float:
    """Clip ``p`` into ``[0, 1]`` to absorb quadrature round-off."""
    return np.clip(p, 0.0, 1.0)


def is_strictly_increasing(values: Sequence[float], atol: float = MONOTONE_ATOL) -> bool:
    """Return True when ``values`` is strictly increasing (within ``atol``)."""
    arr = np.asarray(values, dtype=float)
    if arr.size <= 1:
        return True
    return bool(np.all(np.diff(arr) > atol))


def first_nonincreasing_index(values: Sequence[float], atol: float = MONOTONE_ATOL) -> int:
    """Index of the first element that fails strict monotonicity, or ``-1``.

    The index returned is the position of the *offending* element, i.e. the
    smallest ``i`` such that ``values[i] <= values[i-1]``.
    """
    arr = np.asarray(values, dtype=float)
    bad = np.nonzero(np.diff(arr) <= atol)[0]
    return int(bad[0] + 1) if bad.size else -1


def trapezoid_integral(fn: Callable[[np.ndarray], np.ndarray], lo: float, hi: float,
                       num: int = 2049) -> float:
    """Trapezoid-rule integral of ``fn`` over ``[lo, hi]``.

    Used as a cross-check for closed-form tail expectations in tests; the
    production evaluators use :func:`scipy.integrate.quad` where accuracy
    matters.
    """
    if hi <= lo:
        return 0.0
    xs = np.linspace(lo, hi, num)
    return float(np.trapezoid(fn(xs), xs))


def bracketed_minimize(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    num: int = 256,
) -> Tuple[float, float]:
    """Grid-scan ``fn`` on ``[lo, hi]`` and return ``(argmin, min)``.

    This mirrors the paper's brute-force philosophy: the expected-cost
    landscape in ``t_1`` is smooth but can contain infeasible gaps (where the
    recurrence stops being increasing), so derivative-based optimizers are
    unreliable.  ``fn`` may return ``inf``/``nan`` for infeasible points; those
    are ignored.
    """
    if hi < lo:
        raise ValueError(f"empty bracket [{lo}, {hi}]")
    xs = np.linspace(lo, hi, num)
    best_x, best_v = float("nan"), float("inf")
    for x in xs:
        v = fn(float(x))
        if np.isfinite(v) and v < best_v:
            best_x, best_v = float(x), float(v)
    return best_x, best_v


def geometric_grid(lo: float, hi: float, num: int) -> np.ndarray:
    """Geometrically spaced grid on ``[lo, hi]`` (handles ``lo == 0``).

    Heavy-tailed distributions (Pareto, Weibull k<1) need denser sampling near
    the left end of the ``t_1`` search interval; a geometric grid captures
    that without inflating ``num``.
    """
    if num < 2:
        raise ValueError("need at least two grid points")
    if hi <= lo:
        raise ValueError(f"empty grid range [{lo}, {hi}]")
    if lo <= 0.0:
        shift = (hi - lo) * 1e-9
        return lo + np.geomspace(shift, hi - lo, num)
    return np.geomspace(lo, hi, num)
