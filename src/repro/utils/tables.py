"""ASCII table / CSV rendering for the experiment harness.

The experiment scripts regenerate the paper's tables as plain text so that
results can be diffed against EXPERIMENTS.md without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_float(value: float | None, digits: int = 2, dash: str = "-") -> str:
    """Render ``value`` with ``digits`` decimals; ``None``/nan/inf become ``dash``.

    The paper marks infeasible brute-force candidates with ``(-)``; we use the
    same convention for non-increasing sequences.
    """
    if value is None:
        return dash
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return dash
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a monospace table with a header rule, paper-style."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a simple CSV string (no quoting; numeric payloads only)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(str(c) for c in row))
    return "\n".join(out)
