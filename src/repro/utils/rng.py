"""Random-number-generator plumbing.

Every stochastic code path in this library accepts a ``seed`` argument that
may be ``None``, an integer, or a :class:`numpy.random.Generator`.  No module
ever touches NumPy's legacy global RNG state, so results are reproducible by
threading a single seed through the public API.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``Generator`` instances are passed through unchanged so callers can share
    one stream across several consumers; anything else is fed to
    :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Split ``seed`` into ``n`` independent child :class:`SeedSequence`\\ s.

    These are the *same* children :func:`spawn_generators` wraps in
    generators, but still in picklable seed form — the process-backend
    Monte-Carlo path ships them to workers, which reconstruct
    ``default_rng(child)`` locally and therefore draw the exact streams the
    in-process thread path would have drawn.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return seq.spawn(n)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Used by parameter sweeps (e.g. the Table 2 harness) so that each
    (distribution, heuristic) cell draws from its own stream and results do
    not depend on evaluation order.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]
