"""Shared utilities: seeded RNG handling, numeric helpers, table formatting."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.numeric import (
    bracketed_minimize,
    clip_probability,
    is_strictly_increasing,
    trapezoid_integral,
)
from repro.utils.tables import format_table, format_float

__all__ = [
    "as_generator",
    "spawn_generators",
    "bracketed_minimize",
    "clip_probability",
    "is_strictly_increasing",
    "trapezoid_integral",
    "format_table",
    "format_float",
]
