"""Terminal plotting: sparklines and bar charts for the experiment CLI.

No plotting stack is assumed offline, so the harness renders figures as
unicode block graphics: Fig. 3's cost landscapes become sparklines (with
gaps where the ``t_1`` candidate is infeasible) and Fig. 4's comparisons
become horizontal bars.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["sparkline", "bar_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_GAP = "·"


def _resample(values: Sequence[Optional[float]], width: int) -> list:
    """Reduce ``values`` to ``width`` buckets (mean of finite entries;
    ``None`` when a bucket holds no finite value)."""
    n = len(values)
    out = []
    for b in range(width):
        lo = b * n // width
        hi = max((b + 1) * n // width, lo + 1)
        bucket = [v for v in values[lo:hi] if v is not None and math.isfinite(v)]
        out.append(sum(bucket) / len(bucket) if bucket else None)
    return out


def sparkline(values: Sequence[Optional[float]], width: int = 60) -> str:
    """Render a series as a one-line sparkline.

    ``None`` / non-finite entries render as ``·`` — the infeasibility gaps
    of Fig. 3.  Values are min-max scaled over the finite entries.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if not values:
        return ""
    series = _resample(list(values), min(width, len(values)))
    finite = [v for v in series if v is not None]
    if not finite:
        return _GAP * len(series)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in series:
        if v is None:
            chars.append(_GAP)
        elif span <= 0:
            chars.append(_BLOCKS[0])
        else:
            idx = int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5)
            chars.append(_BLOCKS[idx])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and value suffixes."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        return ""
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    vmax = max(values)
    if vmax <= 0:
        raise ValueError("bar chart needs at least one positive value")
    label_w = max(len(s) for s in labels)
    lines = []
    for label, v in zip(labels, values):
        n = max(int(round(v / vmax * width)), 1 if v > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {'█' * n} {v:.3g}{unit}")
    return "\n".join(lines)
