"""Durable filesystem primitives shared by the snapshot and journal writers.

The crash-safety story of the service tier rests on two disciplines:

* **atomic publish** — new content lands in a same-directory temp file,
  is flushed and fsynced, and only then ``os.replace``-d over the target,
  so readers see either the old document or the new one, never a torn mix;
* **directory durability** — ``os.replace`` updates a directory entry, and
  that entry itself lives in the directory's data blocks: without an fsync
  of the *directory*, a power failure can silently undo the rename even
  though the file's bytes were synced.  :func:`fsync_dir` closes that gap.

POSIX filesystems accept ``os.open`` on a directory; platforms without
``O_DIRECTORY`` (Windows) refuse, which is why :func:`fsync_dir` degrades
to a no-op there and reports whether the sync actually happened.
"""

from __future__ import annotations

import os

__all__ = ["fsync_dir", "durable_replace"]


def fsync_dir(path: str) -> bool:
    """fsync the directory at ``path``; returns ``True`` if it happened.

    Guarded for platforms where directories cannot be opened (no
    ``O_DIRECTORY``, e.g. Windows): the rename is still atomic there, only
    the rename-survives-power-loss guarantee is weakened — callers treat a
    ``False`` return as best-effort, not as an error.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def durable_replace(tmp_path: str, target: str) -> None:
    """``os.replace`` then fsync the containing directory (best effort).

    The caller is responsible for having flushed and fsynced ``tmp_path``
    itself; this completes the publish by making the rename durable.
    """
    os.replace(tmp_path, target)
    fsync_dir(os.path.dirname(os.path.abspath(target)) or ".")
