"""Probability-distribution substrate (Table 1 / Table 5 / Appendix A-B).

Nine continuous laws with closed-form CDF/quantile/moments and conditional
expectations, a discrete distribution type for the DP strategy, LogNormal
trace fitting, and the registry of the paper's exact instantiations.
"""

from repro.distributions.base import Distribution, SupportError
from repro.distributions.beta import Beta
from repro.distributions.bounded_pareto import BoundedPareto
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.fitting import LogNormalFit, fit_lognormal, ks_distance
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal, lognormal_from_moments
from repro.distributions.pareto import Pareto
from repro.distributions.shifted import ShiftedTail
from repro.distributions.registry import (
    DISTRIBUTION_FACTORIES,
    PAPER_ORDER,
    make_distribution,
    paper_distribution,
    paper_distributions,
)
from repro.distributions.truncated_normal import TruncatedNormal
from repro.distributions.truncated import LeftTruncated
from repro.distributions.uniform import Uniform
from repro.distributions.weibull import Weibull

__all__ = [
    "Distribution",
    "SupportError",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "lognormal_from_moments",
    "TruncatedNormal",
    "Pareto",
    "Uniform",
    "LeftTruncated",
    "ShiftedTail",
    "Beta",
    "BoundedPareto",
    "DiscreteDistribution",
    "EmpiricalDistribution",
    "LogNormalFit",
    "fit_lognormal",
    "ks_distance",
    "DISTRIBUTION_FACTORIES",
    "PAPER_ORDER",
    "make_distribution",
    "paper_distribution",
    "paper_distributions",
]
