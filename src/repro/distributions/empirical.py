"""Empirical execution-time distribution built from raw trace samples.

The paper fits a parametric LogNormal to the neuroscience traces; in
practice the fit can be misspecified (multi-modal pipelines, contaminated
traces).  This class lets every strategy run *directly on the data*:

* CDF — the empirical distribution function, linearly interpolated between
  order statistics (so it is continuous and strictly increasing on the
  sample range);
* quantile — the exact inverse of that interpolation;
* pdf — a Gaussian kernel-density estimate (Silverman bandwidth by
  default), needed only by the Eq. (11) recurrence;
* tail — samples bound the support above by ``max * (1 + tail_margin)``:
  an empirical law cannot extrapolate, so the support is finite and
  strategies close their sequences at that bound.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(Distribution):
    """Distribution interpolated from observed samples."""

    name = "empirical"

    def __init__(
        self,
        samples,
        tail_margin: float = 0.05,
        bandwidth: str | float = "silverman",
    ):
        samples = np.sort(np.asarray(samples, dtype=float))
        if samples.ndim != 1 or samples.size < 10:
            raise ValueError(
                f"need at least 10 one-dimensional samples, got shape "
                f"{samples.shape}"
            )
        if np.any(samples < 0):
            raise ValueError("execution times must be nonnegative")
        if samples[0] == samples[-1]:
            raise ValueError("degenerate trace: all samples equal")
        if tail_margin < 0:
            raise ValueError(f"tail margin must be nonnegative, got {tail_margin}")
        self.samples = samples
        self.tail_margin = float(tail_margin)
        self.bandwidth = bandwidth
        self._n = samples.size
        # Support: [min sample, max sample * (1 + margin)] — the margin gives
        # the final reservation headroom over the observed worst case.
        self._lo = float(samples[0])
        self._hi = float(samples[-1]) * (1.0 + tail_margin)
        # Interpolation nodes: F(x_(i)) = i/(n+1) (Weibull plotting position),
        # pinned to 0 at the lower support edge and 1 at the upper.
        self._xs = np.concatenate([[self._lo], samples, [self._hi]])
        ps = np.arange(1, self._n + 1) / (self._n + 1.0)
        self._ps = np.concatenate([[0.0], ps, [1.0]])
        # Deduplicate repeated sample values for a strictly increasing grid.
        keep = np.concatenate([[True], np.diff(self._xs) > 0])
        # Merged nodes keep the *largest* probability (right-continuous ECDF).
        xs, ps_out = [], []
        for x, p, k in zip(self._xs, self._ps, keep):
            if k:
                xs.append(x)
                ps_out.append(p)
            else:
                ps_out[-1] = max(ps_out[-1], p)
        self._xs = np.asarray(xs)
        self._ps = np.asarray(ps_out)
        self._kde = stats.gaussian_kde(samples, bw_method=bandwidth)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (self._lo, self._hi)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.interp(t, self._xs, self._ps, left=0.0, right=1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        out = np.interp(q, self._ps, self._xs)
        return out if out.ndim else float(out)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        body = self._kde(np.atleast_1d(t))
        body = body.reshape(t.shape) if t.ndim else float(body[0])
        inside = (t >= self._lo) & (t <= self._hi)
        out = np.where(inside, body, 0.0)
        return out if out.ndim else float(out)

    # Moments straight from the samples (fast and exact for the ECDF).
    def mean(self) -> float:
        return float(self.samples.mean())

    def second_moment(self) -> float:
        return float(np.mean(self.samples**2))

    def var(self) -> float:
        return float(self.samples.var())

    def conditional_expectation(self, tau: float) -> float:
        """Conditional mean above ``tau``.

        Below the largest observation this is the sample mean of the
        exceedances (fast, exact for the ECDF).  Beyond it, the interpolated
        law is uniform on the synthetic top cell ``(max sample, hi]``, so the
        conditional mean falls back to the base class's quadrature over the
        interpolated survival function.
        """
        tau = float(tau)
        if tau < self._lo:
            return self.mean()
        above = self.samples[self.samples > tau]
        if above.size == 0:
            # Inside the synthetic top cell: integrate the interpolated CDF.
            return super().conditional_expectation(tau)
        # Blend the observed exceedances with the top cell's mass (the
        # plotting-position CDF leaves ~1/(n+1) probability above the
        # largest sample, spread uniformly up to hi).
        top_mass = 1.0 - float(self.cdf(self.samples[-1]))
        obs_mass = float(self.sf(tau)) - top_mass
        if obs_mass <= 0.0:
            return super().conditional_expectation(tau)
        top_mean = 0.5 * (float(self.samples[-1]) + self._hi)
        total = obs_mass + top_mass
        return float((above.mean() * obs_mass + top_mean * top_mass) / total)

    def rvs(self, size: int, seed=None) -> np.ndarray:
        """Bootstrap-with-interpolation: inverse-transform through the
        interpolated ECDF (smoother than a plain resample)."""
        return super().rvs(size, seed=seed)

    def params(self) -> dict:
        """Content identity: the sorted trace itself plus the two knobs.

        Samples are stored sorted, so two traces with the same multiset of
        runtimes produce the same params (and hence the same cache key)
        regardless of observation order.
        """
        return {
            "samples": self.samples,
            "tail_margin": self.tail_margin,
            "bandwidth": self.bandwidth,
        }

    def describe(self) -> str:
        return (
            f"Empirical(n={self._n}, range=[{self._lo:g}, {self._hi:g}], "
            f"mean={self.mean():.4g})"
        )
