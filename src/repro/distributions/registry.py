"""Registry of distributions and the paper's Table 1 instantiations.

``paper_distributions()`` returns the exact nine laws the evaluation section
uses, in the same order as Tables 2-4, so the experiment harness can iterate
rows identically to the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.distributions.base import Distribution
from repro.distributions.beta import Beta
from repro.distributions.bounded_pareto import BoundedPareto
from repro.distributions.exponential import Exponential
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal
from repro.distributions.pareto import Pareto
from repro.distributions.truncated_normal import TruncatedNormal
from repro.distributions.uniform import Uniform
from repro.distributions.weibull import Weibull

__all__ = [
    "DISTRIBUTION_FACTORIES",
    "make_distribution",
    "paper_distributions",
    "paper_distribution",
    "PAPER_ORDER",
]

#: Factories accepting keyword parameters, keyed by canonical name.
DISTRIBUTION_FACTORIES: Dict[str, Callable[..., Distribution]] = {
    "exponential": Exponential,
    "weibull": Weibull,
    "gamma": Gamma,
    "lognormal": LogNormal,
    "truncated_normal": TruncatedNormal,
    "pareto": Pareto,
    "uniform": Uniform,
    "beta": Beta,
    "bounded_pareto": BoundedPareto,
}

#: Row order of Tables 2-4 in the paper.
PAPER_ORDER: List[str] = [
    "exponential",
    "weibull",
    "gamma",
    "lognormal",
    "truncated_normal",
    "pareto",
    "uniform",
    "beta",
    "bounded_pareto",
]

#: Table 1 parameter instantiations.
_PAPER_PARAMS: Dict[str, dict] = {
    "exponential": {"rate": 1.0},
    "weibull": {"scale": 1.0, "shape": 0.5},
    "gamma": {"shape": 2.0, "rate": 2.0},
    "lognormal": {"mu": 3.0, "sigma": 0.5},
    "truncated_normal": {"mu": 8.0, "sigma2": 2.0, "a": 0.0},
    "pareto": {"scale": 1.5, "alpha": 3.0},
    "uniform": {"a": 10.0, "b": 20.0},
    "beta": {"alpha": 2.0, "beta": 2.0},
    "bounded_pareto": {"low": 1.0, "high": 20.0, "alpha": 2.1},
}


def make_distribution(name: str, **params) -> Distribution:
    """Instantiate a distribution by canonical name with explicit parameters."""
    key = name.lower().replace("-", "_")
    if key not in DISTRIBUTION_FACTORIES:
        known = ", ".join(sorted(DISTRIBUTION_FACTORIES))
        raise KeyError(f"unknown distribution {name!r}; known: {known}")
    return DISTRIBUTION_FACTORIES[key](**params)


def paper_distribution(name: str) -> Distribution:
    """Instantiate one law with its Table 1 parameters."""
    key = name.lower().replace("-", "_")
    if key not in _PAPER_PARAMS:
        known = ", ".join(PAPER_ORDER)
        raise KeyError(f"no paper instantiation for {name!r}; known: {known}")
    return DISTRIBUTION_FACTORIES[key](**_PAPER_PARAMS[key])


def paper_distributions() -> Dict[str, Distribution]:
    """All nine Table 1 laws, in the paper's table row order."""
    return {name: paper_distribution(name) for name in PAPER_ORDER}
