"""Abstract distribution API used throughout the library.

The paper (Table 5 / Appendix A) works with nine classical laws, each needing
a richer interface than :mod:`scipy.stats` exposes uniformly:

* pdf / CDF / survival / quantile (Table 5 closed forms),
* mean, variance and the second moment (for the ``A_1`` bound of Theorem 2),
* the conditional expectation ``E[X | X > tau]`` (Appendix B closed forms,
  driving the MEAN-BY-MEAN heuristic),
* reproducible sampling from an explicit ``numpy.random.Generator``.

Concrete subclasses implement the closed forms; this base class provides
numeric fallbacks (quadrature over the survival function) so any new law only
*has* to provide pdf/CDF/quantile, and so tests can cross-check every closed
form against the generic path.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Tuple

import numpy as np
from scipy import integrate

from repro.utils.rng import SeedLike, as_generator

__all__ = ["Distribution", "SupportError"]


class SupportError(ValueError):
    """Raised when an argument falls outside a distribution's support."""


class Distribution(abc.ABC):
    """A nonnegative continuous probability law for job execution times.

    Subclasses must define :attr:`name`, :meth:`support`, :meth:`pdf`,
    :meth:`cdf` and :meth:`quantile`; everything else has a numerically robust
    default implementation.
    """

    #: Short identifier used by the registry and experiment tables.
    name: str = "distribution"

    # ------------------------------------------------------------------
    # Mandatory interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def support(self) -> Tuple[float, float]:
        """Return ``(lower, upper)``; ``upper`` may be ``math.inf``."""

    @abc.abstractmethod
    def pdf(self, t):
        """Probability density at ``t`` (vectorized; 0 outside the support)."""

    @abc.abstractmethod
    def cdf(self, t):
        """Cumulative distribution ``F(t) = P(X <= t)`` (vectorized)."""

    @abc.abstractmethod
    def quantile(self, q):
        """Quantile function ``Q(q) = inf { t : F(t) >= q }`` (vectorized)."""

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def params(self) -> Dict[str, object]:
        """Canonical constructor parameters of this law.

        The contract, relied on by the ``repro.service`` plan cache:

        * ``make_distribution(self.name, **self.params())`` (or the law's own
          constructor) rebuilds an equal distribution;
        * two instances describing the same law return the same mapping no
          matter how they were constructed, so content-hash cache keys built
          from it (:func:`repro.service.keys.plan_key`) are stable;
        * any change to a parameter changes the mapping.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement params(); every "
            "distribution must expose its canonical constructor parameters"
        )

    # ------------------------------------------------------------------
    # Support helpers
    # ------------------------------------------------------------------
    @property
    def lower(self) -> float:
        return self.support()[0]

    @property
    def upper(self) -> float:
        return self.support()[1]

    @property
    def is_bounded(self) -> bool:
        """True when the execution time has a finite upper bound."""
        return math.isfinite(self.upper)

    def _check_support(self) -> None:
        lo, hi = self.support()
        if lo < 0:
            raise SupportError(
                f"{self.name}: execution times must be nonnegative, got lower={lo}"
            )
        if hi <= lo:
            raise SupportError(f"{self.name}: empty support [{lo}, {hi}]")

    # ------------------------------------------------------------------
    # Derived probability functions
    # ------------------------------------------------------------------
    def sf(self, t):
        """Survival function ``P(X >= t)``.

        For the continuous laws used here ``P(X >= t) == P(X > t)``, which is
        the weight appearing in the Theorem 1 cost series.
        """
        return 1.0 - self.cdf(t)

    def median(self) -> float:
        return float(self.quantile(0.5))

    # ------------------------------------------------------------------
    # Moments — numeric defaults, overridden with closed forms
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """``E[X]`` — default: ``lower + \\int sf`` over the support."""
        lo, hi = self.support()
        tail, _ = integrate.quad(self.sf, lo, hi, limit=200)
        return lo + tail

    def second_moment(self) -> float:
        """``E[X^2]`` — default: ``lo^2 + 2 \\int t.sf(t) dt`` (integration by parts)."""
        lo, hi = self.support()
        tail, _ = integrate.quad(lambda t: t * self.sf(t), lo, hi, limit=200)
        return lo * lo + 2.0 * tail

    def var(self) -> float:
        m = self.mean()
        return self.second_moment() - m * m

    def std(self) -> float:
        return math.sqrt(max(self.var(), 0.0))

    # ------------------------------------------------------------------
    # Conditional expectation  E[X | X > tau]   (Eq. 14)
    # ------------------------------------------------------------------
    def conditional_expectation(self, tau: float) -> float:
        """``E[X | X > tau]`` used by the MEAN-BY-MEAN heuristic.

        Subclasses override this with the Appendix B closed forms; this
        default integrates the survival function:

        ``E[X | X > tau] = tau + (1 / sf(tau)) * \\int_tau^hi sf(t) dt``.
        """
        lo, hi = self.support()
        tau = float(tau)
        if tau < lo:
            return self.mean()
        if tau >= hi:
            raise SupportError(
                f"{self.name}: conditional expectation undefined at tau={tau} "
                f">= upper support bound {hi}"
            )
        s = float(self.sf(tau))
        if s <= 0.0:
            raise SupportError(
                f"{self.name}: survival probability vanished at tau={tau}"
            )
        tail, _ = integrate.quad(self.sf, tau, hi, limit=200)
        return tau + tail / s

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def rvs(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` execution times.

        Default: inverse-transform sampling through :meth:`quantile`, which is
        exact for every law in this library and keeps sampling reproducible
        from a single uniform stream.
        """
        if size <= 0:
            raise ValueError(f"sample size must be positive, got {size}")
        rng = as_generator(seed)
        u = rng.random(size)
        return np.asarray(self.quantile(u), dtype=float)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description used in experiment output."""
        lo, hi = self.support()
        hi_s = "inf" if math.isinf(hi) else f"{hi:g}"
        return (
            f"{self.name}(support=[{lo:g}, {hi_s}], mean={self.mean():.4g}, "
            f"std={self.std():.4g})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"
