"""Bounded Pareto ``BoundedPareto(L, H, alpha)`` (Table 1 / Table 5).

A Pareto law restricted to ``[L, H]`` and renormalized — the paper's model of
heavy-tailed-but-capped execution times (instantiated ``L=1, H=20,
alpha=2.1``).  The MEAN-BY-MEAN recursion (Theorem 13) is

``E[X | X > tau] = alpha/(alpha-1) * (H^{1-alpha} - tau^{1-alpha})
                                     / (H^{-alpha} - tau^{-alpha})``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.distributions.base import Distribution, SupportError

__all__ = ["BoundedPareto"]


class BoundedPareto(Distribution):
    """``BoundedPareto(L, H, alpha)`` on ``[L, H]``."""

    name = "bounded_pareto"

    def __init__(self, low: float = 1.0, high: float = 20.0, alpha: float = 2.1):
        if low <= 0:
            raise ValueError(f"bounded pareto L must be positive, got {low}")
        if high <= low:
            raise ValueError(f"bounded pareto needs L < H, got [{low}, {high}]")
        if alpha <= 0:
            raise ValueError(f"bounded pareto alpha must be positive, got {alpha}")
        self.low = float(low)
        self.high = float(high)
        self.alpha = float(alpha)
        # 1 - (L/H)^alpha: total mass of the parent Pareto inside [L, H].
        self._mass = 1.0 - (self.low / self.high) ** self.alpha
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (self.low, self.high)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        tt = np.clip(t, self.low, self.high)
        body = (
            self.alpha
            * self.low**self.alpha
            * np.power(tt, -self.alpha - 1.0)
            / self._mass
        )
        out = np.where((t >= self.low) & (t <= self.high), body, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        tt = np.clip(t, self.low, self.high)
        body = (1.0 - np.power(self.low / tt, self.alpha)) / self._mass
        out = np.clip(np.where(t >= self.low, body, 0.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        # Invert F: t = L * (1 - mass*q)^{-1/alpha}  (Table 5, last row).
        out = self.low * np.power(1.0 - self._mass * q, -1.0 / self.alpha)
        out = np.clip(out, self.low, self.high)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        a, L, H = self.alpha, self.low, self.high
        if a == 1.0:  # repro-lint: disable=RS102 -- alpha=1 singular closed form
            # Limit case: E[X] = ln(H/L) * (L*H)/(H - L) ... derived from integral.
            return math.log(H / L) * L / (1.0 - L / H)
        return (a / (a - 1.0)) * (H**a * L - H * L**a) / (H**a - L**a)

    def second_moment(self) -> float:
        a, L, H = self.alpha, self.low, self.high
        if a == 2.0:  # repro-lint: disable=RS102 -- alpha=2 singular closed form
            return 2.0 * (L**2 * math.log(H / L)) / (1.0 - (L / H) ** 2)
        return (a / (a - 2.0)) * (H**a * L**2 - H**2 * L**a) / (H**a - L**a)

    def var(self) -> float:
        m = self.mean()
        return self.second_moment() - m * m

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 13 closed form."""
        tau = float(tau)
        if tau < self.low:
            return self.mean()
        if tau >= self.high:
            raise SupportError(
                f"bounded pareto conditional expectation undefined at tau={tau} "
                f">= H={self.high}"
            )
        a, H = self.alpha, self.high
        if a == 1.0:  # repro-lint: disable=RS102 -- alpha=1 singular closed form
            return math.log(H / tau) / (1.0 / tau - 1.0 / H)
        return (a / (a - 1.0)) * (H ** (1.0 - a) - tau ** (1.0 - a)) / (
            H ** (-a) - tau ** (-a)
        )

    def params(self) -> dict:
        return {"low": self.low, "high": self.high, "alpha": self.alpha}

    def describe(self) -> str:
        return f"BoundedPareto(L={self.low:g}, H={self.high:g}, alpha={self.alpha:g})"
