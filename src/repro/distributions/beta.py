"""Beta distribution ``Beta(alpha, beta)`` on ``[0, 1]`` (Table 1 / Table 5).

Paper instantiation: ``alpha = beta = 2``.  The MEAN-BY-MEAN recursion
(Theorem 12) simplifies, using ``B(a+1,b)/B(a,b) = a/(a+b)`` and the
regularized incomplete beta ``I_x``, to

``E[X | X > tau] = a/(a+b) * (1 - I_tau(a+1, b)) / (1 - I_tau(a, b))``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import special

from repro.distributions.base import Distribution, SupportError

__all__ = ["Beta"]


class Beta(Distribution):
    """``Beta(a, b)`` with density ``t^{a-1} (1-t)^{b-1} / B(a, b)`` on ``[0, 1]``."""

    name = "beta"

    def __init__(self, alpha: float = 2.0, beta: float = 2.0):
        if alpha <= 0 or beta <= 0:
            raise ValueError(f"beta parameters must be positive, got ({alpha}, {beta})")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (0.0, 1.0)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        inside = (t >= 0.0) & (t <= 1.0)
        tt = np.clip(t, 0.0, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_body = (
                (self.alpha - 1.0) * np.log(np.where(tt > 0, tt, 1.0))
                + (self.beta - 1.0) * np.log(np.where(tt < 1, 1.0 - tt, 1.0))
                - special.betaln(self.alpha, self.beta)
            )
            body = np.exp(log_body)
        # Edge behaviour for shape parameters < 1 (density diverges) or > 1 (0).
        body = np.where((tt == 0.0) & (self.alpha < 1.0), np.inf, body)  # repro-lint: disable=RS102 -- exact support endpoint
        body = np.where((tt == 0.0) & (self.alpha > 1.0), 0.0, body)  # repro-lint: disable=RS102 -- exact support endpoint
        body = np.where((tt == 1.0) & (self.beta < 1.0), np.inf, body)  # repro-lint: disable=RS102 -- exact support endpoint
        body = np.where((tt == 1.0) & (self.beta > 1.0), 0.0, body)  # repro-lint: disable=RS102 -- exact support endpoint
        out = np.where(inside, body, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = special.betainc(self.alpha, self.beta, np.clip(t, 0.0, 1.0))
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        out = special.betaincinv(self.alpha, self.beta, q)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def var(self) -> float:
        a, b = self.alpha, self.beta
        return a * b / ((a + b) ** 2 * (a + b + 1.0))

    def second_moment(self) -> float:
        a, b = self.alpha, self.beta
        return a * (a + 1.0) / ((a + b) * (a + b + 1.0))

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 12 via regularized incomplete beta ratios."""
        tau = float(tau)
        if tau <= 0.0:
            return self.mean()
        if tau >= 1.0:
            raise SupportError(
                f"beta conditional expectation undefined at tau={tau} >= 1"
            )
        a, b = self.alpha, self.beta
        num = special.betaincc(a + 1.0, b, tau)
        den = special.betaincc(a, b, tau)
        if den <= 0.0:
            raise SupportError(f"beta survival probability vanished at tau={tau}")
        return self.mean() * float(num) / float(den)

    def params(self) -> dict:
        return {"alpha": self.alpha, "beta": self.beta}

    def describe(self) -> str:
        return f"Beta(alpha={self.alpha:g}, beta={self.beta:g})"
