"""Discrete execution-time distributions ``(v_i, f_i)`` (Section 4.2).

The dynamic-programming strategy of Theorem 5 operates on a finite support
``v_1 < v_2 < ... < v_n`` with probabilities ``f_i``.  When such a
distribution is obtained by truncating an unbounded continuous law at
``b = Q(1 - eps)``, the masses sum to ``F(b) = 1 - eps`` rather than 1 — the
class keeps the raw masses and exposes both normalized and raw views, because
the DP renormalizes suffixes itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.numeric import is_strictly_increasing

__all__ = ["DiscreteDistribution"]


class DiscreteDistribution:
    """Finite support ``values`` with nonnegative ``masses``.

    Parameters
    ----------
    values:
        Strictly increasing possible execution times.
    masses:
        Probability of each value.  May sum to less than 1 when the
        distribution is a truncation of an unbounded law (the deficit is the
        discarded tail mass ``eps``).
    """

    def __init__(self, values: Sequence[float], masses: Sequence[float]):
        values = np.asarray(values, dtype=float)
        masses = np.asarray(masses, dtype=float)
        if values.ndim != 1 or masses.ndim != 1:
            raise ValueError("values and masses must be one-dimensional")
        if values.size == 0:
            raise ValueError("discrete distribution needs at least one value")
        if values.size != masses.size:
            raise ValueError(
                f"length mismatch: {values.size} values vs {masses.size} masses"
            )
        if not is_strictly_increasing(values):
            raise ValueError("discrete support must be strictly increasing")
        if np.any(masses < 0.0):
            raise ValueError("masses must be nonnegative")
        total = float(masses.sum())
        if total <= 0.0:
            raise ValueError("total probability mass must be positive")
        if total > 1.0 + 1e-9:
            raise ValueError(f"total probability mass exceeds 1: {total}")
        self.values = values
        self.masses = masses
        self.total_mass = min(total, 1.0)

    def __len__(self) -> int:
        return int(self.values.size)

    #: Identifier matching the Distribution.params() cache-key protocol.
    name = "discrete"

    def params(self) -> dict:
        """Canonical content identity (support + masses) for cache keys."""
        return {"values": self.values, "masses": self.masses}

    @property
    def tail_deficit(self) -> float:
        """Probability mass discarded by truncation (``eps`` in the paper)."""
        return max(0.0, 1.0 - self.total_mass)

    def normalized(self) -> "DiscreteDistribution":
        """Return a copy whose masses sum to exactly 1."""
        return DiscreteDistribution(self.values, self.masses / self.masses.sum())

    def mean(self) -> float:
        """Mean under the normalized masses."""
        return float(np.dot(self.values, self.masses) / self.masses.sum())

    def var(self) -> float:
        m = self.mean()
        second = float(np.dot(self.values**2, self.masses) / self.masses.sum())
        return second - m * m

    def cdf(self, t) -> np.ndarray | float:
        """``P(X <= t)`` under the *raw* masses (vectorized)."""
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.values, t, side="right")
        cum = np.concatenate([[0.0], np.cumsum(self.masses)])
        out = cum[idx]
        return out if out.ndim else float(out)

    def sf(self, t) -> np.ndarray | float:
        """``P(X >= t)`` = raw tail mass at or above ``t`` plus the deficit.

        The truncated tail is counted as "job still running", matching the
        paper's treatment where the DP sequence is extended beyond ``b`` by a
        fallback heuristic.
        """
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.values, t, side="left")
        tail = np.concatenate([np.cumsum(self.masses[::-1])[::-1], [0.0]])
        out = tail[idx] + self.tail_deficit
        return out if out.ndim else float(out)

    def rvs(self, size: int, seed=None) -> np.ndarray:
        """Sample from the normalized masses."""
        from repro.utils.rng import as_generator

        if size <= 0:
            raise ValueError(f"sample size must be positive, got {size}")
        rng = as_generator(seed)
        p = self.masses / self.masses.sum()
        return rng.choice(self.values, size=size, p=p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DiscreteDistribution n={len(self)} support=[{self.values[0]:g}, "
            f"{self.values[-1]:g}] mass={self.total_mass:.6f}>"
        )
