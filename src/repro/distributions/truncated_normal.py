"""One-sided truncated normal ``TruncatedNormal(mu, sigma^2, a)`` (Table 1).

The law of a ``Normal(mu, sigma^2)`` conditioned on ``X >= a`` — the paper's
way of using a Gaussian shape while keeping execution times nonnegative
(its instantiation is ``mu=8, sigma^2=2, a=0``).  The conditional expectation
(Theorem 9) is the classic Mills-ratio formula

``E[X | X > tau] = mu + sigma * phi(z) / (1 - Phi(z))``, ``z = (tau-mu)/sigma``

valid for any ``tau >= a`` (truncating an already-truncated Gaussian at a
larger point gives the same conditional law).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special

from repro.distributions.base import Distribution
from repro.distributions.special import normal_hazard

__all__ = ["TruncatedNormal"]


class TruncatedNormal(Distribution):
    """Normal(mu, sigma^2) restricted to ``[a, inf)`` and renormalized."""

    name = "truncated_normal"

    def __init__(self, mu: float = 8.0, sigma2: float = 2.0, a: float = 0.0):
        if sigma2 <= 0:
            raise ValueError(f"variance must be positive, got {sigma2}")
        self.mu = float(mu)
        self.sigma2 = float(sigma2)
        self.sigma = math.sqrt(float(sigma2))
        self.a = float(a)
        # Mass of the parent Gaussian above the truncation point.
        self._tail = float(special.ndtr(-(self.a - self.mu) / self.sigma))
        if self._tail <= 0.0:
            raise ValueError(
                f"truncation point a={a} leaves no probability mass "
                f"(mu={mu}, sigma^2={sigma2})"
            )
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (self.a, math.inf)

    def _z(self, t: np.ndarray) -> np.ndarray:
        return (t - self.mu) / self.sigma

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        z = self._z(t)
        body = np.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi) * self._tail)
        out = np.where(t >= self.a, body, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        body = (special.ndtr(self._z(t)) - special.ndtr(self._z(np.full_like(t, self.a)))) / self._tail
        out = np.clip(np.where(t >= self.a, body, 0.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        body = special.ndtr(-self._z(t)) / self._tail
        out = np.clip(np.where(t >= self.a, body, 1.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        base = special.ndtr((self.a - self.mu) / self.sigma)
        out = self.mu + self.sigma * special.ndtri(base + q * self._tail)
        out = np.maximum(out, self.a)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        z = (self.a - self.mu) / self.sigma
        return self.mu + self.sigma * normal_hazard(z)

    def var(self) -> float:
        z = (self.a - self.mu) / self.sigma
        h = normal_hazard(z)
        return self.sigma**2 * (1.0 + z * h - h * h)

    def second_moment(self) -> float:
        m = self.mean()
        return self.var() + m * m

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 9 (Mills-ratio form)."""
        tau = float(tau)
        if tau <= self.a:
            return self.mean()
        z = (tau - self.mu) / self.sigma
        return self.mu + self.sigma * normal_hazard(z)

    def params(self) -> dict:
        return {"mu": self.mu, "sigma2": self.sigma2, "a": self.a}

    def describe(self) -> str:
        return (
            f"TruncatedNormal(mu={self.mu:g}, sigma2={self.sigma**2:g}, a={self.a:g})"
        )
