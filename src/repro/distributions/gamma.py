"""Gamma distribution ``Gamma(shape, rate)`` (Table 1 / Table 5).

Paper instantiation: ``shape = 2.0, rate = 2.0``.  The MEAN-BY-MEAN recursion
(Theorem 7) is

``E[X | X > tau] = shape/rate + (tau*rate)^shape e^{-tau*rate}
                   / (Gamma(shape, tau*rate) * rate)``

evaluated in log space.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special

from repro.distributions.base import Distribution
from repro.distributions.special import log_upper_gamma

__all__ = ["Gamma"]


class Gamma(Distribution):
    """``Gamma(shape, rate)`` with pdf ``rate^shape t^{shape-1} e^{-rate t}/Gamma(shape)``."""

    name = "gamma"

    def __init__(self, shape: float = 2.0, rate: float = 2.0):
        if shape <= 0:
            raise ValueError(f"gamma shape must be positive, got {shape}")
        if rate <= 0:
            raise ValueError(f"gamma rate must be positive, got {rate}")
        self.shape = float(shape)
        self.rate = float(rate)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (0.0, math.inf)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        a, b = self.shape, self.rate
        with np.errstate(divide="ignore", invalid="ignore"):
            tt = np.maximum(t, 0.0)
            log_body = (
                a * math.log(b)
                + (a - 1.0) * np.log(np.where(tt > 0, tt, 1.0))
                - b * tt
                - special.gammaln(a)
            )
            body = np.exp(log_body)
            body = np.where(tt > 0, body, b if a == 1.0 else (math.inf if a < 1.0 else 0.0))  # repro-lint: disable=RS102 -- shape=1 exact density limit at 0
        out = np.where(t >= 0.0, body, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > 0.0, special.gammainc(self.shape, self.rate * np.maximum(t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > 0.0, special.gammaincc(self.shape, self.rate * np.maximum(t, 0.0)), 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        out = special.gammaincinv(self.shape, q) / self.rate
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.shape / self.rate

    def var(self) -> float:
        return self.shape / self.rate**2

    def second_moment(self) -> float:
        return self.shape * (self.shape + 1.0) / self.rate**2

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 7 closed form, log-space incomplete gamma."""
        tau = float(tau)
        if tau <= 0.0:
            return self.mean()
        x = tau * self.rate
        log_num = self.shape * math.log(x) - x
        log_den = log_upper_gamma(self.shape, x)
        return self.shape / self.rate + math.exp(log_num - log_den) / self.rate

    def params(self) -> dict:
        return {"shape": self.shape, "rate": self.rate}

    def describe(self) -> str:
        return f"Gamma(shape={self.shape:g}, rate={self.rate:g})"
