"""Uniform distribution ``Uniform(a, b)`` (Table 1 / Table 5).

The only law for which the paper derives the exact optimum in closed form:
Theorem 4 proves the optimal reservation sequence is the singleton ``(b)``
for *any* cost parameters.  Its MEAN-BY-MEAN recursion (Theorem 11) is
``t_i = (b + t_{i-1}) / 2``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.distributions.base import Distribution

__all__ = ["Uniform"]


class Uniform(Distribution):
    """``Uniform(a, b)`` with density ``1/(b-a)`` on ``[a, b]``."""

    name = "uniform"

    def __init__(self, a: float = 10.0, b: float = 20.0):
        if b <= a:
            raise ValueError(f"uniform needs a < b, got [{a}, {b}]")
        if a < 0:
            raise ValueError(f"uniform lower bound must be nonnegative, got {a}")
        self.a = float(a)
        self.b = float(b)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (self.a, self.b)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where((t >= self.a) & (t <= self.b), 1.0 / (self.b - self.a), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.clip((t - self.a) / (self.b - self.a), 0.0, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        out = self.a + q * (self.b - self.a)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 0.5 * (self.a + self.b)

    def var(self) -> float:
        return (self.b - self.a) ** 2 / 12.0

    def second_moment(self) -> float:
        return (self.a**2 + self.a * self.b + self.b**2) / 3.0

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 11: ``E[X | X > tau] = (b + tau) / 2``."""
        tau = float(tau)
        if tau < self.a:
            return self.mean()
        if tau >= self.b:
            from repro.distributions.base import SupportError

            raise SupportError(
                f"uniform conditional expectation undefined at tau={tau} >= b={self.b}"
            )
        return 0.5 * (self.b + tau)

    def params(self) -> dict:
        return {"a": self.a, "b": self.b}

    def describe(self) -> str:
        return f"Uniform(a={self.a:g}, b={self.b:g})"
