"""LogNormal distribution ``LogNormal(mu, sigma)`` (Table 1 / Table 5).

This is the paper's flagship law: both neuroscience traces of Fig. 1 fit a
LogNormal, and the NEUROHPC scenario (Section 5.3) instantiates
``mu = 7.1128, sigma = 0.2039`` (seconds).  The conditional expectation
(Theorem 8) reduces to a ratio of Gaussian survival probabilities which we
compute through ``log_ndtr`` so the MEAN-BY-MEAN sequence stays finite deep
into the tail.

:func:`lognormal_from_moments` implements the footnote-4 reparameterization:
given a desired mean ``m`` and standard deviation ``s`` of the *execution
time*, it returns the underlying Gaussian parameters.  (We use the exact
inversion ``mu = ln m - sigma^2/2``; the paper's footnote carries a typo.)
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special

from repro.distributions.base import Distribution
from repro.distributions.special import log_normal_sf_ratio

__all__ = ["LogNormal", "lognormal_from_moments"]


class LogNormal(Distribution):
    """``LogNormal(mu, sigma)``: ``ln X ~ Normal(mu, sigma^2)``, support ``(0, inf)``."""

    name = "lognormal"

    def __init__(self, mu: float = 3.0, sigma: float = 0.5):
        if sigma <= 0:
            raise ValueError(f"lognormal sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (0.0, math.inf)

    def _z(self, t: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return (np.log(t) - self.mu) / self.sigma

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = self._z(np.where(t > 0, t, 1.0))
            body = np.exp(-0.5 * z * z) / (
                np.where(t > 0, t, 1.0) * self.sigma * math.sqrt(2.0 * math.pi)
            )
        out = np.where(t > 0.0, body, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            body = special.ndtr(self._z(np.where(t > 0, t, 1.0)))
        out = np.where(t > 0.0, body, 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            body = special.ndtr(-self._z(np.where(t > 0, t, 1.0)))
        out = np.where(t > 0.0, body, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        out = np.exp(self.mu + self.sigma * special.ndtri(q))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def second_moment(self) -> float:
        return math.exp(2.0 * self.mu + 2.0 * self.sigma**2)

    def var(self) -> float:
        # expm1 keeps relative precision when sigma is tiny (Fig. 4's
        # moment-matched reparameterizations can produce sigma ~ 1e-5).
        return math.expm1(self.sigma**2) * math.exp(2.0 * self.mu + self.sigma**2)

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 8: ``E[X|X>tau] = e^{mu+s^2/2} Phi(s - z) / Phi(-z)``, ``z=(ln tau - mu)/s``."""
        tau = float(tau)
        if tau <= 0.0:
            return self.mean()
        z = (math.log(tau) - self.mu) / self.sigma
        return self.mean() * log_normal_sf_ratio(z - self.sigma, z)

    def params(self) -> dict:
        return {"mu": self.mu, "sigma": self.sigma}

    def describe(self) -> str:
        return f"LogNormal(mu={self.mu:g}, sigma={self.sigma:g})"


def lognormal_from_moments(mean: float, std: float) -> LogNormal:
    """Build a LogNormal with the given execution-time mean and std.

    Exact inversion of the Table 5 moment formulas:
    ``sigma = sqrt(ln(1 + (std/mean)^2))`` and ``mu = ln(mean) - sigma^2/2``.
    Used by the Fig. 4 robustness sweep, which scales the trace-fitted mean
    and standard deviation by factors up to 10.
    """
    if mean <= 0:
        raise ValueError(f"lognormal mean must be positive, got {mean}")
    if std <= 0:
        raise ValueError(f"lognormal std must be positive, got {std}")
    sigma2 = math.log1p((std / mean) ** 2)
    mu = math.log(mean) - 0.5 * sigma2
    return LogNormal(mu=mu, sigma=math.sqrt(sigma2))
