"""Shifted-tail combinator: the law of ``X - u | X > u``.

This is the *remaining work* after a job has verifiably completed ``u``
hours of it — the information state of a spot-then-reserve handover: the
spot phase checkpoints through the first ``u`` hours, so the reserved phase
plans against the leftover work, which is the base law conditioned on
``X > u`` and translated back to the origin.  (Contrast
:class:`~repro.distributions.truncated.LeftTruncated`, the law of the
*total* time ``X | X > c`` after a failed reservation, where no work
survives.)
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.distributions.base import Distribution, SupportError

__all__ = ["ShiftedTail"]


class ShiftedTail(Distribution):
    """``X - cut`` conditioned on ``X > cut`` (support starts at 0)."""

    name = "shifted_tail"

    def __init__(self, base: Distribution, cut: float):
        cut = float(cut)
        lo, hi = base.support()
        if cut >= hi:
            raise SupportError(
                f"cannot shift {base.describe()} past {cut} >= upper bound {hi}"
            )
        if cut < 0:
            raise ValueError(f"cut must be nonnegative, got {cut}")
        self.base = base
        self.cut = cut
        self._tail = float(base.sf(cut))
        if self._tail <= 0.0:
            raise SupportError(
                f"no probability mass beyond {cut} in {base.describe()}"
            )
        self.name = f"{base.name}-{self.cut:g}|>{self.cut:g}"
        self._check_support()

    def support(self) -> Tuple[float, float]:
        lo, hi = self.base.support()
        upper = hi - self.cut if math.isfinite(hi) else math.inf
        return (max(lo - self.cut, 0.0), upper)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(
            t > 0.0, np.asarray(self.base.pdf(t + self.cut)) / self._tail, 0.0
        )
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        body = (
            np.asarray(self.base.cdf(t + self.cut)) - (1.0 - self._tail)
        ) / self._tail
        out = np.clip(np.where(t > 0.0, body, 0.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        body = np.asarray(self.base.sf(t + self.cut)) / self._tail
        out = np.clip(np.where(t > 0.0, body, 1.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        base_q = (1.0 - self._tail) + q * self._tail
        out = np.maximum(np.asarray(self.base.quantile(base_q)) - self.cut, 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.base.conditional_expectation(self.cut) - self.cut

    def conditional_expectation(self, tau: float) -> float:
        """Shifting composes with conditioning:
        ``E[X - u | X - u > tau, X > u] = E[X | X > u + tau] - u``."""
        return (
            self.base.conditional_expectation(self.cut + max(float(tau), 0.0))
            - self.cut
        )

    def params(self) -> dict:
        """Nested token: the base law's canonical params plus the cut point."""
        return {
            "base": {"law": self.base.name, "params": self.base.params()},
            "cut": self.cut,
        }

    def describe(self) -> str:
        return f"ShiftedTail({self.base.describe()}, cut={self.cut:g})"
