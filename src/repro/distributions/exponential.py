"""Exponential distribution ``Exp(lambda)`` (Table 1 / Table 5).

The memoryless law: ``E[X | X > tau] = tau + 1/lambda`` makes the
MEAN-BY-MEAN sequence an arithmetic progression, and Proposition 2 shows the
optimal RESERVATIONONLY sequence scales as ``s_i / lambda`` where the reduced
sequence ``s_i`` is universal (``s_1 ~ 0.74219``).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.distributions.base import Distribution

__all__ = ["Exponential"]


class Exponential(Distribution):
    """``Exp(rate)`` with pdf ``rate * exp(-rate * t)`` on ``[0, inf)``."""

    name = "exponential"

    def __init__(self, rate: float = 1.0):
        if rate <= 0:
            raise ValueError(f"exponential rate must be positive, got {rate}")
        self.rate = float(rate)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (0.0, math.inf)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, self.rate * np.exp(-self.rate * np.maximum(t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, -np.expm1(-self.rate * np.maximum(t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= 0.0, np.exp(-self.rate * np.maximum(t, 0.0)), 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        # q = 1 maps to +inf (unbounded support); silence the log(0) warning
        # rather than let callers trip on it at the boundary.
        with np.errstate(divide="ignore"):
            out = -np.log1p(-q) / self.rate
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 1.0 / self.rate

    def var(self) -> float:
        return 1.0 / self.rate**2

    def second_moment(self) -> float:
        return 2.0 / self.rate**2

    def conditional_expectation(self, tau: float) -> float:
        """Memoryless: ``E[X | X > tau] = tau + 1/rate`` (Table 6, row 1)."""
        tau = float(tau)
        if tau < 0.0:
            return self.mean()
        return tau + 1.0 / self.rate

    def params(self) -> dict:
        return {"rate": self.rate}

    def describe(self) -> str:
        return f"Exponential(rate={self.rate:g})"
