"""Left-truncation combinator: the law of ``X | X > c``.

This is the information state of the online reservation process: after a
reservation of length ``c`` fails, the only thing learned is that the job's
execution time exceeds ``c`` — the remaining uncertainty is exactly the base
law conditioned on ``X > c``.  The adaptive replanner
(:mod:`repro.runtime.replanning`) re-derives strategies against this
combinator after every failure.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.distributions.base import Distribution, SupportError

__all__ = ["LeftTruncated"]


class LeftTruncated(Distribution):
    """``base`` conditioned on ``X > cut`` (support ``(cut, upper)``)."""

    name = "left_truncated"

    def __init__(self, base: Distribution, cut: float):
        cut = float(cut)
        lo, hi = base.support()
        if cut >= hi:
            raise SupportError(
                f"cannot truncate {base.describe()} at {cut} >= upper bound {hi}"
            )
        self.base = base
        self.cut = max(cut, lo)
        self._tail = float(base.sf(self.cut))
        if self._tail <= 0.0:
            raise SupportError(
                f"no probability mass beyond {cut} in {base.describe()}"
            )
        self.name = f"{base.name}|>{self.cut:g}"
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (self.cut, self.base.upper)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > self.cut, np.asarray(self.base.pdf(t)) / self._tail, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        body = (np.asarray(self.base.cdf(t)) - (1.0 - self._tail)) / self._tail
        out = np.clip(np.where(t > self.cut, body, 0.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        body = np.asarray(self.base.sf(t)) / self._tail
        out = np.clip(np.where(t > self.cut, body, 1.0), 0.0, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        base_q = (1.0 - self._tail) + q * self._tail
        out = np.maximum(np.asarray(self.base.quantile(base_q)), self.cut)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.base.conditional_expectation(self.cut)

    def conditional_expectation(self, tau: float) -> float:
        """Truncating twice composes: ``(X|X>c)|X>tau = X|X>max(c,tau)``."""
        return self.base.conditional_expectation(max(float(tau), self.cut))

    def second_moment(self) -> float:
        # Generic quadrature over the truncated survival (base class path),
        # restricted to the new support.
        return super().second_moment()

    def params(self) -> dict:
        """Nested token: the base law's canonical params plus the cut point."""
        return {
            "base": {"law": self.base.name, "params": self.base.params()},
            "cut": self.cut,
        }

    def describe(self) -> str:
        return f"LeftTruncated({self.base.describe()}, cut={self.cut:g})"
