"""Fitting distributions to execution-time traces (Fig. 1 pipeline).

The paper derives its NEUROHPC workload by fitting a LogNormal to ~5000 runs
of the VBMQA neuroscience application.  The original Vanderbilt traces are
proprietary, so the reproduction generates synthetic traces from the fitted
law (see :mod:`repro.platforms.traces`) and recovers the parameters with the
estimators below — exercising the same samples -> fit -> distribution -> strategy
code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.lognormal import LogNormal

__all__ = ["LogNormalFit", "fit_lognormal", "ks_distance"]


@dataclass(frozen=True)
class LogNormalFit:
    """Result of a LogNormal maximum-likelihood fit.

    Attributes mirror what the paper reports on top of Fig. 1: the Gaussian
    parameters and the implied execution-time mean / standard deviation.
    """

    mu: float
    sigma: float
    mean: float
    std: float
    n_samples: int
    log_likelihood: float

    def distribution(self) -> LogNormal:
        return LogNormal(mu=self.mu, sigma=self.sigma)


def fit_lognormal(samples: np.ndarray) -> LogNormalFit:
    """Maximum-likelihood LogNormal fit (exact: Gaussian MLE on ``ln x``)."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    if samples.size < 2:
        raise ValueError(f"need at least 2 samples to fit, got {samples.size}")
    if np.any(samples <= 0.0):
        raise ValueError("lognormal samples must be strictly positive")
    logs = np.log(samples)
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=0))
    if sigma <= 0.0:
        raise ValueError("degenerate samples: zero variance in log space")
    n = samples.size
    # Gaussian log-likelihood of ln(x) minus the Jacobian sum(ln x).
    ll = (
        -0.5 * n * math.log(2.0 * math.pi)
        - n * math.log(sigma)
        - 0.5 * n
        - float(logs.sum())
    )
    mean = math.exp(mu + 0.5 * sigma * sigma)
    std = mean * math.sqrt(math.expm1(sigma * sigma))
    return LogNormalFit(
        mu=mu, sigma=sigma, mean=mean, std=std, n_samples=n, log_likelihood=ll
    )


def ks_distance(samples: np.ndarray, distribution) -> float:
    """Kolmogorov-Smirnov distance between ``samples`` and ``distribution``.

    Used in tests and the Fig. 1 experiment to confirm the synthetic traces
    are consistent with the fitted law (goodness-of-fit sanity check).
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    n = samples.size
    if n == 0:
        raise ValueError("need samples to compute a KS distance")
    cdf = np.asarray(distribution.cdf(samples), dtype=float)
    upper = np.max(np.arange(1, n + 1) / n - cdf)
    lower = np.max(cdf - np.arange(0, n) / n)
    return float(max(upper, lower))
