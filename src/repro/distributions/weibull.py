"""Weibull distribution ``Weibull(scale, shape)`` (Table 1 / Table 5).

The paper instantiates a heavy-tailed case (``shape = 0.5``), which is the
slowest-converging law in Table 4 — the discretization heuristics need large
``n`` to capture its tail.  The MEAN-BY-MEAN recursion (Theorem 6) is

``E[X | X > tau] = scale * e^{(tau/scale)^k} * Gamma(1 + 1/k, (tau/scale)^k)``

and is evaluated through the log-space incomplete-gamma helper to avoid the
overflow of ``e^{x}`` against the underflow of ``Gamma(s, x)``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special

from repro.distributions.base import Distribution
from repro.distributions.special import exp_scaled_upper_gamma

__all__ = ["Weibull"]


class Weibull(Distribution):
    """``Weibull(scale, shape)`` with CDF ``1 - exp(-(t/scale)^shape)``."""

    name = "weibull"

    def __init__(self, scale: float = 1.0, shape: float = 0.5):
        if scale <= 0:
            raise ValueError(f"weibull scale must be positive, got {scale}")
        if shape <= 0:
            raise ValueError(f"weibull shape must be positive, got {shape}")
        self.scale = float(scale)
        self.shape = float(shape)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (0.0, math.inf)

    def _z(self, t: np.ndarray) -> np.ndarray:
        return np.power(np.maximum(t, 0.0) / self.scale, self.shape)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            tt = np.maximum(t, 0.0)
            body = (k / lam) * np.power(tt / lam, k - 1.0) * np.exp(-self._z(tt))
        # shape < 1 diverges at 0; report +inf there, 0 for negative t.
        out = np.where(t > 0.0, body, np.where(t == 0.0, body, 0.0))  # repro-lint: disable=RS102 -- exact support endpoint
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > 0.0, -np.expm1(-self._z(t)), 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t > 0.0, np.exp(-self._z(t)), 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        # q = 1 maps to +inf (unbounded support); silence the log(0) warning
        # rather than let callers trip on it at the boundary.
        with np.errstate(divide="ignore"):
            out = self.scale * np.power(-np.log1p(-q), 1.0 / self.shape)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def second_moment(self) -> float:
        return self.scale**2 * math.gamma(1.0 + 2.0 / self.shape)

    def var(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 6 closed form, in log space for tail stability."""
        tau = float(tau)
        if tau <= 0.0:
            return self.mean()
        x = (tau / self.scale) ** self.shape
        return self.scale * exp_scaled_upper_gamma(1.0 + 1.0 / self.shape, x)

    def params(self) -> dict:
        return {"scale": self.scale, "shape": self.shape}

    def describe(self) -> str:
        return f"Weibull(scale={self.scale:g}, shape={self.shape:g})"


def _self_check() -> None:  # pragma: no cover - debugging helper
    w = Weibull(1.0, 0.5)
    assert abs(w.mean() - math.gamma(3.0)) < 1e-12
    assert abs(float(w.cdf(w.quantile(0.3))) - 0.3) < 1e-12
    assert abs(float(special.gammaincc(2.0, 0.0)) - 1.0) < 1e-15
