"""Numerically stable special-function helpers for the Appendix B formulas.

The MEAN-BY-MEAN recursions (Table 6 in the paper) involve ratios such as
``e^x * Gamma(s, x)`` and Gaussian Mills ratios ``phi(z) / (1 - Phi(z))``.
Evaluated naively these overflow/underflow a few reservations into the
sequence (the survival probabilities decay exponentially fast), so we work in
log space throughout and switch to asymptotic expansions when SciPy's
regularized incomplete gamma underflows.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = [
    "log_upper_gamma",
    "exp_scaled_upper_gamma",
    "normal_hazard",
    "log_normal_sf_ratio",
]


def log_upper_gamma(s: float, x: float) -> float:
    """Return ``log Gamma(s, x)`` (upper incomplete gamma), stable for large x.

    For moderate ``x`` this is ``log(gammaincc(s, x)) + gammaln(s)``.  Once
    ``gammaincc`` underflows (x >> s), we use the continued-fraction/asymptotic
    expansion ``Gamma(s, x) ~ x^{s-1} e^{-x} * sum_k prod_{j<k} (s-1-j)/x``.
    """
    if x < 0:
        raise ValueError(f"upper incomplete gamma needs x >= 0, got {x}")
    if x == 0.0:  # repro-lint: disable=RS102 -- exact x=0 special case
        return float(special.gammaln(s))
    q = float(special.gammaincc(s, x))
    if q > 0.0 and math.isfinite(q):
        return math.log(q) + float(special.gammaln(s))
    # Asymptotic series for x large relative to s.
    term = 1.0
    total = 1.0
    for k in range(1, 40):
        term *= (s - k) / x
        total += term
        if abs(term) < 1e-18 * abs(total):
            break
    total = max(total, 1e-300)
    return (s - 1.0) * math.log(x) - x + math.log(total)


def exp_scaled_upper_gamma(s: float, x: float) -> float:
    """Return ``e^x * Gamma(s, x)`` without overflow.

    This is the quantity appearing in the Weibull and Gamma MEAN-BY-MEAN
    recursions (Theorems 6-7): the conditional expectation stays finite even
    when both factors are astronomically large/small.
    """
    return math.exp(x + log_upper_gamma(s, x))


def normal_hazard(z: float) -> float:
    """Gaussian hazard (inverse Mills ratio) ``phi(z) / (1 - Phi(z))``.

    Stable for large ``z`` via ``exp(log phi(z) - log Phi(-z))``; the
    asymptotic behaviour ``~ z`` is recovered to machine precision.
    """
    log_phi = -0.5 * z * z - 0.5 * math.log(2.0 * math.pi)
    log_sf = float(special.log_ndtr(-z))
    return math.exp(log_phi - log_sf)


def log_normal_sf_ratio(z_num: float, z_den: float) -> float:
    """Return ``Phi(-z_num) / Phi(-z_den)`` computed in log space.

    Used by the LogNormal conditional expectation (Theorem 8), where both
    survival probabilities can underflow independently although their ratio
    is of order one.
    """
    return math.exp(float(special.log_ndtr(-z_num)) - float(special.log_ndtr(-z_den)))


def gauss_phi(z: np.ndarray | float):
    """Standard normal pdf."""
    return np.exp(-0.5 * np.square(z)) / math.sqrt(2.0 * math.pi)


def gauss_cdf(z: np.ndarray | float):
    """Standard normal CDF via ``ndtr`` (vectorized)."""
    return special.ndtr(z)
