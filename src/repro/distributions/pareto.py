"""Pareto distribution ``Pareto(nu, alpha)`` (Table 1 / Table 5).

Heavy-tailed with survival ``(nu/t)^alpha`` on ``[nu, inf)``.  The paper uses
``nu=1.5, alpha=3.0`` (finite variance is required by Theorem 2).  The
MEAN-BY-MEAN recursion (Theorem 10) is the multiplicative ladder
``t_i = alpha/(alpha-1) * t_{i-1}``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.distributions.base import Distribution

__all__ = ["Pareto"]


class Pareto(Distribution):
    """``Pareto(scale, alpha)`` with CDF ``1 - (scale/t)^alpha`` for ``t >= scale``."""

    name = "pareto"

    def __init__(self, scale: float = 1.5, alpha: float = 3.0):
        if scale <= 0:
            raise ValueError(f"pareto scale must be positive, got {scale}")
        if alpha <= 0:
            raise ValueError(f"pareto alpha must be positive, got {alpha}")
        self.scale = float(scale)
        self.alpha = float(alpha)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (self.scale, math.inf)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore"):
            body = self.alpha * self.scale**self.alpha / np.power(
                np.maximum(t, self.scale), self.alpha + 1.0
            )
        out = np.where(t >= self.scale, body, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        body = 1.0 - np.power(self.scale / np.maximum(t, self.scale), self.alpha)
        out = np.where(t >= self.scale, body, 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        body = np.power(self.scale / np.maximum(t, self.scale), self.alpha)
        out = np.where(t >= self.scale, body, 1.0)
        return out if out.ndim else float(out)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile argument must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = self.scale * np.power(1.0 - q, -1.0 / self.alpha)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.scale / (self.alpha - 1.0)

    def second_moment(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        return self.alpha * self.scale**2 / (self.alpha - 2.0)

    def var(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        return (
            self.alpha
            * self.scale**2
            / ((self.alpha - 1.0) ** 2 * (self.alpha - 2.0))
        )

    def conditional_expectation(self, tau: float) -> float:
        """Theorem 10: ``E[X | X > tau] = alpha * tau / (alpha - 1)``."""
        if self.alpha <= 1.0:
            return math.inf
        tau = float(tau)
        if tau < self.scale:
            return self.mean()
        return self.alpha * tau / (self.alpha - 1.0)

    def params(self) -> dict:
        return {"scale": self.scale, "alpha": self.alpha}

    def describe(self) -> str:
        return f"Pareto(scale={self.scale:g}, alpha={self.alpha:g})"
