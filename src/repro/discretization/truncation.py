"""Tail truncation of unbounded distributions (Section 4.2.1).

Before discretizing, an infinite-support law is truncated at
``b = Q(1 - eps)``: the final ``eps`` quantile is discarded.  The paper uses
``eps = 1e-7`` in the evaluation; a smaller ``eps`` gives a better sampling
at the price of a wider (and therefore coarser, for EQUAL-TIME) interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TruncationResult", "truncation_bound", "DEFAULT_EPSILON"]

#: Value used throughout the paper's evaluation section.
DEFAULT_EPSILON = 1e-7


@dataclass(frozen=True)
class TruncationResult:
    """Interval ``[a, b]`` retained after truncation, plus the discarded mass."""

    lower: float
    upper: float
    epsilon: float

    @property
    def width(self) -> float:
        return self.upper - self.lower


def truncation_bound(distribution, epsilon: float = DEFAULT_EPSILON) -> TruncationResult:
    """Compute the discretization interval for ``distribution``.

    Bounded supports are returned unchanged (``epsilon`` reported as 0);
    unbounded ones are cut at ``Q(1 - epsilon)``.
    """
    if not (0.0 < epsilon < 1.0):
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    lo, hi = distribution.support()
    if math.isfinite(hi):
        return TruncationResult(lower=lo, upper=hi, epsilon=0.0)
    b = float(distribution.quantile(1.0 - epsilon))
    if not math.isfinite(b) or b <= lo:
        raise ValueError(
            f"truncation failed for {distribution.describe()}: Q(1-{epsilon}) = {b}"
        )
    return TruncationResult(lower=lo, upper=b, epsilon=epsilon)
