"""Discretization schemes (Section 4.2.1).

Both schemes map a (possibly truncated) continuous law onto ``n`` pairs
``(v_i, f_i)``:

* **EQUAL-PROBABILITY** — ``v_i = Q(i F(b)/n)`` with uniform masses
  ``f_i = F(b)/n``: fine resolution where the density is high;
* **EQUAL-TIME** — ``v_i = a + i (b-a)/n`` with masses
  ``f_i = F(v_i) - F(v_{i-1})``: fine resolution in time, cheap tails.

When the law is unbounded, the masses sum to ``F(b) = 1 - eps`` — the
deficit is deliberately kept (see :class:`DiscreteDistribution`).
"""

from __future__ import annotations

import numpy as np

from repro.discretization.truncation import DEFAULT_EPSILON, truncation_bound
from repro.distributions.discrete import DiscreteDistribution
from repro.utils.numeric import MONOTONE_ATOL

__all__ = ["equal_probability", "equal_time", "discretize", "SCHEMES"]


def _dedupe(values: np.ndarray, masses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge duplicate support points (quantile collisions in flat CDF
    regions), accumulating their masses on the retained point."""
    keep = np.concatenate([[True], np.diff(values) > MONOTONE_ATOL])
    if keep.all():
        return values, masses
    groups = np.cumsum(keep) - 1
    merged = np.zeros(int(groups[-1]) + 1)
    np.add.at(merged, groups, masses)
    return values[keep], merged


def equal_probability(
    distribution, n: int, epsilon: float = DEFAULT_EPSILON
) -> DiscreteDistribution:
    """EQUAL-PROBABILITY discretization with ``n`` points."""
    if n < 1:
        raise ValueError(f"need at least one sample, got n={n}")
    trunc = truncation_bound(distribution, epsilon)
    fb = float(distribution.cdf(trunc.upper))
    qs = np.arange(1, n + 1) * (fb / n)
    values = np.asarray(distribution.quantile(qs), dtype=float)
    # Guard the final point against quantile round-off past the bound.
    values[-1] = min(values[-1], trunc.upper)
    masses = np.full(n, fb / n)
    values, masses = _dedupe(values, masses)
    return DiscreteDistribution(values, masses)


def equal_time(
    distribution, n: int, epsilon: float = DEFAULT_EPSILON
) -> DiscreteDistribution:
    """EQUAL-TIME discretization with ``n`` points."""
    if n < 1:
        raise ValueError(f"need at least one sample, got n={n}")
    trunc = truncation_bound(distribution, epsilon)
    a, b = trunc.lower, trunc.upper
    values = a + np.arange(1, n + 1) * ((b - a) / n)
    edges = np.concatenate([[a], values])
    cdf = np.asarray(distribution.cdf(edges), dtype=float)
    masses = np.diff(cdf)
    # Zero-mass points contribute nothing but inflate the DP; drop them
    # (keeping the last point, which anchors the sequence at b).
    keep = (masses > 0.0) | (np.arange(n) == n - 1)
    values, masses = values[keep], np.maximum(masses[keep], 0.0)
    values, masses = _dedupe(values, masses)
    return DiscreteDistribution(values, masses)


#: Scheme registry used by the experiment harness.
SCHEMES = {
    "equal_probability": equal_probability,
    "equal_time": equal_time,
}


def discretize(
    distribution, n: int, scheme: str, epsilon: float = DEFAULT_EPSILON
) -> DiscreteDistribution:
    """Dispatch to a scheme by name (``equal_probability`` / ``equal_time``)."""
    key = scheme.lower().replace("-", "_")
    if key not in SCHEMES:
        raise KeyError(f"unknown scheme {scheme!r}; known: {sorted(SCHEMES)}")
    return SCHEMES[key](distribution, n, epsilon)
