"""Truncation and discretization of continuous laws (Section 4.2.1)."""

from repro.discretization.schemes import (
    SCHEMES,
    discretize,
    equal_probability,
    equal_time,
)
from repro.discretization.truncation import (
    DEFAULT_EPSILON,
    TruncationResult,
    truncation_bound,
)

__all__ = [
    "SCHEMES",
    "discretize",
    "equal_probability",
    "equal_time",
    "DEFAULT_EPSILON",
    "TruncationResult",
    "truncation_bound",
]
