"""Graceful degradation: run a ladder of evaluators, cheapest last.

A ladder is an ordered list of ``(name, thunk)`` rungs.  :func:`run_ladder`
tries them top to bottom and returns the first success together with a
:class:`LadderReport` describing every attempt — which is what the planner
stamps into its responses as ``degraded`` / ``evaluator`` / ``attempts``.

Semantics:

* a rung that raises is recorded (type + message) and the next rung runs;
* once the optional :class:`~repro.resilience.policies.Deadline` expires,
  intermediate rungs are *skipped* — only the final rung (by construction
  the cheapest, e.g. the Theorem 1 series) still runs, because a late
  answer beats no answer;
* if every rung fails, :class:`LadderExhausted` carries the full attempt
  log (and chains the last error).

Metrics: each fallback step counts ``resilience.fallbacks``, a non-first
success counts ``resilience.degraded_responses``, and the winning rung
counts ``resilience.evaluator.<name>`` (a declared dynamic family).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.observability import metrics
from repro.observability import names
from repro.resilience.policies import Deadline

__all__ = ["LadderExhausted", "LadderReport", "run_ladder"]

Rung = Tuple[str, Callable[[], object]]


class LadderExhausted(RuntimeError):
    """Every rung of a degradation ladder failed."""

    def __init__(self, attempts: List[dict]) -> None:
        tried = ", ".join(a["evaluator"] for a in attempts)
        super().__init__(f"all evaluators failed (tried: {tried})")
        self.attempts = attempts


@dataclass
class LadderReport:
    """How a ladder run went; serialized into service responses."""

    evaluator: str
    degraded: bool
    attempts: List[dict] = field(default_factory=list)

    def to_fields(self) -> dict:
        return {
            "degraded": self.degraded,
            "evaluator": self.evaluator,
            "attempts": list(self.attempts),
        }


def run_ladder(
    rungs: Sequence[Rung],
    deadline: Optional[Deadline] = None,
) -> Tuple[object, LadderReport]:
    """Run ``rungs`` in order; return ``(value, report)`` of the first success."""
    if not rungs:
        raise ValueError("a degradation ladder needs at least one rung")
    attempts: List[dict] = []
    last = len(rungs) - 1
    failure: Optional[BaseException] = None
    for index, (name, thunk) in enumerate(rungs):
        if index != last and deadline is not None and deadline.expired():
            attempts.append(
                {"evaluator": name, "outcome": "skipped", "error": "deadline expired"}
            )
            metrics.inc(names.RESILIENCE_DEADLINE_EXPIRED)
            continue
        try:
            value = thunk()
        except Exception as exc:
            failure = exc
            attempts.append(
                {
                    "evaluator": name,
                    "outcome": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            metrics.inc(names.RESILIENCE_FALLBACKS)
            continue
        attempts.append({"evaluator": name, "outcome": "ok"})
        metrics.inc(f"{names.RESILIENCE_EVALUATOR_PREFIX}{name}")
        degraded = index > 0
        if degraded:
            metrics.inc(names.RESILIENCE_DEGRADED)
        return value, LadderReport(
            evaluator=name, degraded=degraded, attempts=attempts
        )
    raise LadderExhausted(attempts) from failure
