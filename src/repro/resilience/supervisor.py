"""Generic process supervisor: liveness probes, failover hooks, restarts.

The shard tier (:mod:`repro.service.router`) runs N cache workers as child
processes; any of them can die (OOM, SIGKILL drills) or wedge (alive but
not answering).  The supervisor is the piece that notices, tells the
router to fail the shard's keys over to the surviving ring, restarts the
worker in the background, and tells the router when it is healthy again.

It is deliberately transport- and process-agnostic — a *ward* is three
callables:

* ``is_alive()`` — cheap structural liveness (``proc.poll() is None``);
* ``ping()`` — end-to-end health (an RPC round trip); must return a bool
  and never raise;
* ``restart()`` — replace the ward with a fresh instance; called from the
  supervisor's restart thread, may block while the replacement boots.

State machine per ward, evaluated every ``ping_interval_s``:

* a successful probe resets the failure streak and (re)marks the ward up
  via ``on_up`` — idempotent, so a ward the *router* marked down after a
  transient RPC failure is brought back by the next clean probe without a
  restart;
* a dead process triggers failover immediately; a wedged one after
  ``max_ping_failures`` consecutive failed pings.  Either way ``on_down``
  fires first (requests must start failing over before the restart
  begins), then one restart thread runs ``restart()`` after
  ``restart_backoff_s``;
* ``max_restarts`` bounds the budget (``None`` = unlimited); a ward whose
  budget is exhausted stays down and is reported in :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["SupervisorPolicy", "Ward", "Supervisor"]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Probe cadence and restart budget for every supervised ward."""

    #: Seconds between health probes of each ward.
    ping_interval_s: float = 0.5
    #: Consecutive failed pings (with the process alive) before the ward
    #: counts as wedged and is failed over + restarted.
    max_ping_failures: int = 3
    #: Delay before a restart attempt (lets a crash loop breathe).
    restart_backoff_s: float = 0.25
    #: Restart budget per ward; ``None`` = unlimited.
    max_restarts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ping_interval_s <= 0:
            raise ValueError(
                f"ping_interval_s must be positive, got {self.ping_interval_s}"
            )
        if self.max_ping_failures < 1:
            raise ValueError(
                f"max_ping_failures must be >= 1, got {self.max_ping_failures}"
            )
        if self.restart_backoff_s < 0:
            raise ValueError(
                f"restart_backoff_s must be >= 0, got {self.restart_backoff_s}"
            )
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0 (or None), got {self.max_restarts}"
            )


@dataclass
class Ward:
    """One supervised thing plus its runtime bookkeeping."""

    name: str
    is_alive: Callable[[], bool]
    ping: Callable[[], bool]
    restart: Callable[[], None]
    consecutive_failures: int = 0
    restarts: int = 0
    up: bool = True
    restarting: bool = False
    last_error: Optional[str] = None
    _restart_thread: Optional[threading.Thread] = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "up": self.up,
            "restarting": self.restarting,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class Supervisor:
    """Monitor thread over a set of :class:`Ward`\\ s."""

    def __init__(
        self,
        policy: Optional[SupervisorPolicy] = None,
        on_down: Optional[Callable[[str], None]] = None,
        on_up: Optional[Callable[[str], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.policy = policy if policy is not None else SupervisorPolicy()
        self._on_down = on_down
        self._on_up = on_up
        self._sleep = sleep
        self._wards: Dict[str, Ward] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def add(
        self,
        name: str,
        is_alive: Callable[[], bool],
        ping: Callable[[], bool],
        restart: Callable[[], None],
    ) -> Ward:
        ward = Ward(name=name, is_alive=is_alive, ping=ping, restart=restart)
        with self._lock:
            self._wards[name] = ward
        return ward

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        thread = threading.Thread(
            target=self._monitor, name="shard-supervisor", daemon=True
        )
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = thread
        thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        # Join outside the lock: the monitor loop takes it in check_once.
        if thread is not None:
            thread.join(timeout)

    # -- probe loop -----------------------------------------------------
    def check_once(self) -> None:
        """One probe pass over every ward (the loop body; public for tests)."""
        with self._lock:
            wards = list(self._wards.values())
        for ward in wards:
            self._probe(ward)

    def _monitor(self) -> None:
        while not self._stop.is_set():
            self.check_once()
            self._sleep(self.policy.ping_interval_s)

    def _probe(self, ward: Ward) -> None:
        try:
            alive = bool(ward.is_alive())
            healthy = alive and bool(ward.ping())
        except Exception as exc:  # noqa: BLE001 - a probe that raises is a
            # failed probe, never a dead supervisor: the loop must outlive
            # every misbehaving ward callback.
            ward.last_error = f"probe raised: {exc!r}"
            alive = False
            healthy = False
        if healthy:
            ward.consecutive_failures = 0
            # Re-mark up on *every* clean probe (idempotent): a ward the
            # router benched after a transient RPC error comes back without
            # needing a restart cycle.
            ward.up = True
            if self._on_up is not None:
                self._on_up(ward.name)
            return
        ward.consecutive_failures += 1
        wedged = ward.consecutive_failures >= self.policy.max_ping_failures
        if not (alive is False or wedged):
            return
        if ward.up:
            ward.up = False
            if self._on_down is not None:
                self._on_down(ward.name)
        self._maybe_restart(ward)

    def _maybe_restart(self, ward: Ward) -> None:
        if ward.restarting:
            return
        budget = self.policy.max_restarts
        if budget is not None and ward.restarts >= budget:
            return
        ward.restarting = True

        def run() -> None:
            try:
                if self.policy.restart_backoff_s > 0:
                    self._sleep(self.policy.restart_backoff_s)
                ward.restart()
                ward.restarts += 1
                ward.last_error = None
            except Exception as exc:  # noqa: BLE001 - a failed restart is
                # recorded and retried on a later probe; raising here would
                # kill the restart thread silently and strand the ward.
                ward.last_error = f"restart failed: {exc!r}"
                ward.restarts += 1
            finally:
                ward.restarting = False

        thread = threading.Thread(
            target=run, name=f"restart-{ward.name}", daemon=True
        )
        ward._restart_thread = thread
        thread.start()

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            wards = [ward.to_dict() for ward in self._wards.values()]
        return {
            "policy": {
                "ping_interval_s": self.policy.ping_interval_s,
                "max_ping_failures": self.policy.max_ping_failures,
                "restart_backoff_s": self.policy.restart_backoff_s,
                "max_restarts": self.policy.max_restarts,
            },
            "wards": wards,
        }

    def ward_names(self) -> List[str]:
        with self._lock:
            return sorted(self._wards)
