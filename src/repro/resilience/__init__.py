"""Resilience layer: fault injection, retry/backoff, circuit breaking,
graceful degradation.

The serving stack (:mod:`repro.service`) assumes workers, snapshot I/O and
HTTP requests can all fail; this package supplies the machinery that keeps
it answering anyway:

* :mod:`repro.resilience.faults` — deterministic, seedable fault-injection
  harness (``REPRO_FAULTS`` env spec, decorators/context managers);
* :mod:`repro.resilience.policies` — :class:`RetryPolicy` (exponential
  backoff, full jitter, retry budgets), :class:`Deadline` (propagated
  wall-clock budget);
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`
  (closed/open/half-open with ``resilience.breaker.*`` metrics);
* :mod:`repro.resilience.degradation` — :func:`run_ladder`, the
  evaluator fallback chain used by the planner;
* :mod:`repro.resilience.supervisor` — :class:`Supervisor`, the probe /
  failover / restart loop over the shard worker processes.

See ``docs/RESILIENCE.md`` for the fault-spec format, the policy knobs,
and the planner's degradation ladder.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpen,
)
from repro.resilience.degradation import LadderExhausted, LadderReport, run_ladder
from repro.resilience.faults import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_point,
    fire,
    injection_point,
    install,
    installed,
    uninstall,
)
from repro.resilience.policies import (
    Deadline,
    DeadlineExceeded,
    RetryBudget,
    RetryPolicy,
)
from repro.resilience.supervisor import Supervisor, SupervisorPolicy, Ward

__all__ = [
    "ENV_VAR",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "LadderExhausted",
    "LadderReport",
    "RetryBudget",
    "RetryPolicy",
    "Supervisor",
    "SupervisorPolicy",
    "Ward",
    "fault_point",
    "fire",
    "injection_point",
    "install",
    "installed",
    "run_ladder",
    "uninstall",
]
