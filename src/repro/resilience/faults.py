"""Deterministic, seedable fault injection for chaos drills and tests.

The paper's premise is paying for compute under uncertainty; the serving
stack must therefore survive the *infrastructure* being uncertain too.
This module lets any tagged call site — a pool worker, a Monte-Carlo
chunk, a snapshot write, an HTTP request — be made to raise, hang past a
deadline, or return late, without touching the call site's logic:

    from repro.resilience import faults

    faults.fire("pool.worker")          # no-op unless a plan is installed

    @faults.injection_point("mc.chunk")  # decorator form
    def chunk_task(args): ...

    with faults.fault_point("plancache.save"):   # context-manager form
        write_snapshot()

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s, each matching one
site (or a ``prefix.*`` family) with a trigger probability, an optional
trigger budget, and a mode:

* ``error`` — raise :class:`InjectedFault`;
* ``hang``  — sleep ``seconds`` (default 30, long enough to blow any
  per-task timeout) and then continue;
* ``delay`` — sleep ``seconds`` (default 0.05) and return late.

Plans are seeded: every rule draws its trigger decisions from its own
``SeedSequence``-spawned stream (:func:`repro.utils.rng.spawn_generators`),
so a drill replays identically under serial execution and rule-for-rule
identically under threads.

Activation:

* **environment** — ``REPRO_FAULTS=<spec>`` where ``<spec>`` is a compact
  string (``"seed=7;pool.worker:error:0.3;mc.chunk:hang:1:seconds=12"``),
  inline JSON, or the path of a JSON plan file.  The environment is read
  once, lazily, on the first :func:`fire` — which is how a ``repro-serve``
  subprocess (and its process-pool children) picks a drill up;
* **programmatic** — :func:`install` / :func:`uninstall`, or the
  :func:`installed` context manager in tests.

With no plan installed the whole machinery is one module-global ``None``
check per call site.
"""

from __future__ import annotations

import contextlib
import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.observability import metrics
from repro.observability import names
from repro.utils.rng import spawn_generators

__all__ = [
    "ENV_VAR",
    "MODES",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "register_site",
    "known_sites",
    "fire",
    "injection_point",
    "fault_point",
    "install",
    "uninstall",
    "installed",
    "get_plan",
    "reset_env_cache",
]

ENV_VAR = "REPRO_FAULTS"

MODES = ("error", "hang", "delay")

_DEFAULT_SECONDS = {"error": 0.0, "hang": 30.0, "delay": 0.05}


class InjectedFault(RuntimeError):
    """Raised at an injection point when the active plan says "fail here"."""

    def __init__(self, site: str, rule: "FaultRule") -> None:
        super().__init__(f"injected fault at {site!r} ({rule.describe()})")
        self.site = site
        self.rule = rule

    def __reduce__(self) -> tuple:
        # Exceptions unpickle as ``cls(*args)`` with args = (message,) by
        # default, which would crash the two-argument constructor — and a
        # fault injected inside a *process-pool* worker travels back to the
        # driver by pickle.  Rebuild from (site, rule) instead so chaos
        # drills against the process backend surface the real fault, not a
        # BrokenProcessPool unpickling error.
        return (type(self), (self.site, self.rule))


# ----------------------------------------------------------------------
# Site registry (documentation + typo guard for plan specs)
# ----------------------------------------------------------------------
_SITES: Dict[str, str] = {}
_SITES_LOCK = threading.Lock()


def register_site(name: str, description: str = "") -> str:
    """Register (idempotently) a known injection-point name; returns it."""
    with _SITES_LOCK:
        _SITES.setdefault(name, description)
    return name


def known_sites() -> Dict[str, str]:
    """Snapshot of every registered ``site -> description``."""
    with _SITES_LOCK:
        return dict(_SITES)


# The sites the library tags out of the box.  Modules also re-register at
# their call sites (registration is idempotent), but declaring them here
# means a plan referencing them validates even before those modules load.
register_site("pool.worker", "every task attempt on an execution backend")
register_site("mc.chunk", "one parallel Monte-Carlo chunk costing task")
register_site("plancache.save", "plan-cache snapshot write (pre-rename)")
register_site("plancache.load", "plan-cache snapshot read")
register_site("server.request", "admitted POST request handling")
register_site("shard.journal.append", "one shard journal record write (pre-write)")
register_site("shard.compact", "shard journal compaction (pre-publish of the base)")
register_site("shard.rpc", "one router -> shard RPC attempt (client side)")


# ----------------------------------------------------------------------
# Rules and plans
# ----------------------------------------------------------------------
@dataclass
class FaultRule:
    """One injection rule: where, what, how often, how many times."""

    site: str
    mode: str
    rate: float = 1.0
    seconds: Optional[float] = None
    max_triggers: Optional[int] = None
    triggered: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; known: {MODES}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.seconds is None:
            self.seconds = _DEFAULT_SECONDS[self.mode]
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError(
                f"max_triggers must be >= 1 (or None), got {self.max_triggers}"
            )

    def matches(self, site: str) -> bool:
        if self.site.endswith(".*"):
            return site.startswith(self.site[:-1]) or site == self.site[:-2]
        return site == self.site

    def describe(self) -> str:
        parts = [f"mode={self.mode}", f"rate={self.rate}"]
        if self.mode != "error":
            parts.append(f"seconds={self.seconds}")
        if self.max_triggers is not None:
            parts.append(f"max_triggers={self.max_triggers}")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "mode": self.mode,
            "rate": self.rate,
            "seconds": self.seconds,
            "max_triggers": self.max_triggers,
            "triggered": self.triggered,
        }


class FaultPlan:
    """A seeded set of fault rules, installable as the process-wide plan."""

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        strict_sites: bool = True,
    ) -> None:
        rules = list(rules)
        if strict_sites:
            known = known_sites()
            for rule in rules:
                base = rule.site[:-2] if rule.site.endswith(".*") else rule.site
                if rule.site not in known and not any(
                    s == base or s.startswith(base + ".") for s in known
                ):
                    raise ValueError(
                        f"fault rule targets unknown site {rule.site!r}; "
                        f"known sites: {sorted(known)}"
                    )
        self.seed = int(seed)
        self._rules = rules
        self._sleep = sleep
        self._generators = spawn_generators(self.seed, len(rules))
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------
    @classmethod
    def from_dict(cls, doc: dict, **kwargs) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ValueError("fault plan document must be a JSON object")
        rules = []
        for entry in doc.get("faults", []):
            if not isinstance(entry, dict) or "site" not in entry:
                raise ValueError(f"bad fault entry {entry!r}: needs a 'site'")
            rules.append(
                FaultRule(
                    site=str(entry["site"]),
                    mode=str(entry.get("mode", "error")),
                    rate=float(entry.get("rate", 1.0)),
                    seconds=(
                        None
                        if entry.get("seconds") is None
                        else float(entry["seconds"])
                    ),
                    max_triggers=(
                        None
                        if entry.get("max_triggers") is None
                        else int(entry["max_triggers"])
                    ),
                )
            )
        return cls(rules, seed=int(doc.get("seed", 0)), **kwargs)

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "FaultPlan":
        """Build a plan from a compact string, inline JSON, or a file path.

        Compact grammar (segments separated by ``;``)::

            seed=<int>
            <site>:<mode>[:<rate>][:key=value[,key=value...]]

        with keys ``seconds`` and ``max`` (trigger budget), e.g.
        ``"seed=7;pool.worker:error:0.3;mc.chunk:hang:1:seconds=12,max=1"``.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fault spec")
        if spec.startswith("{"):
            return cls.from_dict(json.loads(spec), **kwargs)
        if spec.endswith(".json") or os.path.isfile(spec):
            with open(spec, "r", encoding="utf-8") as fh:
                return cls.from_dict(json.load(fh), **kwargs)
        seed = 0
        rules = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                seed = int(segment[len("seed="):])
                continue
            parts = segment.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault segment {segment!r}; expected site:mode[:rate][:opts]"
                )
            site, mode = parts[0], parts[1]
            rate = float(parts[2]) if len(parts) > 2 and parts[2] else 1.0
            seconds = None
            max_triggers = None
            if len(parts) > 3 and parts[3]:
                for opt in parts[3].split(","):
                    key, _, value = opt.partition("=")
                    key = key.strip()
                    if key == "seconds":
                        seconds = float(value)
                    elif key in ("max", "max_triggers"):
                        max_triggers = int(value)
                    else:
                        raise ValueError(f"unknown fault option {key!r} in {segment!r}")
            rules.append(
                FaultRule(
                    site=site,
                    mode=mode,
                    rate=rate,
                    seconds=seconds,
                    max_triggers=max_triggers,
                )
            )
        return cls(rules, seed=seed, **kwargs)

    # -- introspection --------------------------------------------------
    @property
    def rules(self) -> List[FaultRule]:
        return list(self._rules)

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [rule.to_dict() for rule in self._rules],
                "total_triggered": sum(r.triggered for r in self._rules),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultPlan seed={self.seed} rules={len(self._rules)}>"

    # -- firing ---------------------------------------------------------
    def fire(self, site: str) -> None:
        """Run ``site`` through every matching rule (called by :func:`fire`).

        The trigger decision (RNG draw + budget bookkeeping) happens under
        the plan lock; the fault *effect* — sleeping or raising — happens
        outside it, so a hung site never blocks other injection points.
        """
        to_apply: List[FaultRule] = []
        with self._lock:
            for rule, rng in zip(self._rules, self._generators):
                if not rule.matches(site):
                    continue
                if (
                    rule.max_triggers is not None
                    and rule.triggered >= rule.max_triggers
                ):
                    continue
                if rule.rate < 1.0 and rng.uniform() >= rule.rate:
                    continue
                rule.triggered += 1
                to_apply.append(rule)
        for rule in to_apply:
            metrics.inc(names.RESILIENCE_FAULTS_INJECTED)
            metrics.inc(f"{names.RESILIENCE_FAULT_PREFIX}{site}")
            if rule.mode == "error":
                raise InjectedFault(site, rule)
            self._sleep(rule.seconds or 0.0)


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_STATE_LOCK = threading.Lock()
_PLAN: Optional[FaultPlan] = None
_ENV_LOADED = False


def get_plan() -> Optional[FaultPlan]:
    """The active plan, lazily bootstrapping from ``REPRO_FAULTS`` once."""
    global _PLAN, _ENV_LOADED
    if _PLAN is not None:
        return _PLAN
    if not _ENV_LOADED:
        with _STATE_LOCK:
            if not _ENV_LOADED:
                spec = os.environ.get(ENV_VAR)
                if spec:
                    _PLAN = FaultPlan.from_spec(spec)
                _ENV_LOADED = True
    return _PLAN


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (returns it)."""
    global _PLAN, _ENV_LOADED
    with _STATE_LOCK:
        _PLAN = plan
        _ENV_LOADED = True  # an explicit plan overrides the environment
    return plan


def uninstall() -> None:
    """Deactivate fault injection (and forget any env-sourced plan)."""
    global _PLAN
    with _STATE_LOCK:
        _PLAN = None


def reset_env_cache() -> None:
    """Forget the cached ``REPRO_FAULTS`` read (tests that monkeypatch env)."""
    global _PLAN, _ENV_LOADED
    with _STATE_LOCK:
        _PLAN = None
        _ENV_LOADED = False


@contextlib.contextmanager
def installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of a ``with`` block (tests)."""
    global _PLAN, _ENV_LOADED
    with _STATE_LOCK:
        previous, previous_loaded = _PLAN, _ENV_LOADED
        _PLAN, _ENV_LOADED = plan, True
    try:
        yield plan
    finally:
        with _STATE_LOCK:
            _PLAN, _ENV_LOADED = previous, previous_loaded


# ----------------------------------------------------------------------
# Call-site API
# ----------------------------------------------------------------------
def fire(site: str) -> None:
    """Injection point: apply the active plan's matching rules to ``site``.

    This is the hot-path entry — with no plan installed it is a global
    read, an ``is None`` check, and a return.
    """
    plan = _PLAN if _ENV_LOADED else get_plan()
    if plan is not None:
        plan.fire(site)


def injection_point(site: str, description: str = "") -> Callable:
    """Decorator tagging a function as an injection point named ``site``."""
    register_site(site, description)

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            fire(site)
            return fn(*args, **kwargs)

        wrapper.__fault_site__ = site  # type: ignore[attr-defined]
        return wrapper

    return decorate


@contextlib.contextmanager
def fault_point(site: str, description: str = "") -> Iterator[None]:
    """Context-manager injection point (fires on entry)."""
    register_site(site, description)
    fire(site)
    yield
