"""Retry, deadline, and retry-budget primitives.

A reservation sequence *is* a backoff schedule against an unknown runtime
(the paper's Eq. 11 fixed point); these classes apply the same idea to the
serving stack's own failures:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *full jitter* (each sleep is drawn uniformly from ``[0, cap]``, the
  AWS-style variant that decorrelates synchronized retry storms).  Jitter
  randomness comes from :mod:`repro.utils.rng`, so drills are seedable and
  a policy that never retries never draws — the no-failure path stays
  bit-identical.
* :class:`Deadline` — a propagated wall-clock budget.  Callers pass one
  deadline down a request's whole call tree instead of stacking unrelated
  per-layer timeouts.
* :class:`RetryBudget` — a shared cap on the *total* retries a component
  may spend across calls, so a hard outage degrades instead of
  multiplying load by ``max_attempts``.

All bookkeeping is thread-safe; metrics land under ``resilience.*``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Tuple, Type

from repro.observability import metrics
from repro.observability import names
from repro.utils.rng import SeedLike, as_generator

__all__ = ["DeadlineExceeded", "Deadline", "RetryBudget", "RetryPolicy"]


class DeadlineExceeded(RuntimeError):
    """A wall-clock budget ran out before the work completed."""


class Deadline:
    """An absolute point in time a request must not outlive.

    Immutable after construction; cheap to pass through call trees.  A
    ``None`` deadline everywhere means "no budget" — helpers accept
    ``Optional[Deadline]`` and treat ``None`` as infinite.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        self._clock = clock
        self.expires_at = clock() + seconds

    @classmethod
    def after(cls, seconds: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def require(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` (and count it) when expired."""
        if self.expired():
            metrics.inc(names.RESILIENCE_DEADLINE_EXPIRED)
            suffix = f" in {label}" if label else ""
            raise DeadlineExceeded(f"deadline exceeded{suffix}")

    def bound(self, timeout: Optional[float]) -> Optional[float]:
        """Tighten a per-call ``timeout`` to the remaining budget."""
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Deadline remaining={self.remaining():.3f}s>"


class RetryBudget:
    """A shared, thread-safe cap on total retries across many calls."""

    def __init__(self, max_retries: int) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self._spent = 0
        self._lock = threading.Lock()

    def try_spend(self) -> bool:
        """Reserve one retry; ``False`` once the budget is exhausted."""
        with self._lock:
            if self._spent >= self.max_retries:
                return False
            self._spent += 1
            return True

    @property
    def spent(self) -> int:
        with self._lock:
            return self._spent

    @property
    def remaining(self) -> int:
        with self._lock:
            return self.max_retries - self._spent


class RetryPolicy:
    """Exponential backoff with full jitter, bounded attempts, optional budget.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means at most
    two retries.  ``base_delay=0`` (see :meth:`immediate`) reproduces the
    historical hot-loop retry exactly — no sleeping, no RNG draws.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: bool = True,
        seed: SeedLike = None,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        budget: Optional[RetryBudget] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = bool(jitter)
        self.retry_on = retry_on
        self.budget = budget
        self._sleep = sleep
        self._rng = as_generator(seed)
        self._lock = threading.Lock()

    @classmethod
    def immediate(cls, retries: int) -> "RetryPolicy":
        """``retries`` immediate resubmissions — the pre-policy pool behavior."""
        return cls(max_attempts=retries + 1, base_delay=0.0, jitter=False)

    # -- decision primitives (used by the pool's future-resubmit loop) ---
    def should_retry(
        self,
        attempt: int,
        exc: BaseException,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """May attempt number ``attempt`` (1-based, just failed) be retried?"""
        if attempt >= self.max_attempts:
            metrics.inc(names.RESILIENCE_RETRY_EXHAUSTED)
            return False
        if not isinstance(exc, self.retry_on):
            return False
        if deadline is not None and deadline.expired():
            metrics.inc(names.RESILIENCE_DEADLINE_EXPIRED)
            return False
        if self.budget is not None and not self.budget.try_spend():
            metrics.inc(names.RESILIENCE_RETRY_EXHAUSTED)
            return False
        return True

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter."""
        cap = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if cap <= 0.0:
            return 0.0
        if not self.jitter:
            return cap
        with self._lock:  # numpy Generators are not thread-safe
            return float(self._rng.uniform(0.0, cap))

    def backoff(self, attempt: int, deadline: Optional[Deadline] = None) -> None:
        """Sleep the (jittered, deadline-clamped) delay for ``attempt``."""
        metrics.inc(names.RESILIENCE_RETRIES)
        pause = self.delay(attempt)
        if deadline is not None:
            pause = min(pause, deadline.remaining())
        if pause > 0.0:
            self._sleep(pause)

    def sleep_for(self, seconds: float) -> None:
        """Sleep an externally dictated retry delay (e.g. ``Retry-After``).

        Counted as a retry pause like :meth:`backoff`, but the duration
        comes from the server instead of the jitter schedule.
        """
        metrics.inc(names.RESILIENCE_RETRIES)
        if seconds > 0.0:
            self._sleep(seconds)

    # -- convenience wrapper --------------------------------------------
    def call(
        self,
        fn: Callable,
        *args: Any,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn`` under this policy, re-raising the final failure."""
        attempt = 0
        while True:
            if deadline is not None:
                deadline.require(getattr(fn, "__name__", "call"))
            attempt += 1
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                if not self.should_retry(attempt, exc, deadline):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.backoff(attempt, deadline)
