"""Circuit breaker: closed / open / half-open, with metrics.

Palopoli et al.'s analysis of reservation-based soft real-time systems
argues for *bounded* degradation over hard failure; the breaker is the
switch that triggers it.  Guarding an unreliable dependency (here: the
parallel execution backend) with a breaker turns a failure storm into one
cheap rejection per request, which the degradation ladder then converts
into a cheaper evaluator instead of an error.

State machine:

* **closed** — calls flow; consecutive failures are counted, and reaching
  ``failure_threshold`` opens the breaker;
* **open** — calls are rejected without running until ``recovery_time``
  seconds pass, then the next caller transitions it to half-open;
* **half-open** — up to ``half_open_max_calls`` probe calls run; a probe
  success closes the breaker, a probe failure re-opens it (restarting the
  recovery clock).

Transitions and rejections are counted under ``resilience.breaker.*`` and
the current state is exported as a gauge (0 = closed, 1 = half-open,
2 = open) so ``/metrics`` shows a drill's open → half-open → closed arc.

The clock is injectable for tests; every piece of mutable state is
guarded by ``self._lock`` (lint rule RS104 enforces this — the lock is an
``RLock`` so the lazy open → half-open transition can take it from inside
methods that already hold it).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.observability import metrics
from repro.observability import names

__all__ = ["CircuitOpen", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitOpen(RuntimeError):
    """The breaker rejected a call without running it."""

    def __init__(self, name: str, retry_in: float) -> None:
        super().__init__(
            f"circuit {name!r} is open (next probe in {retry_in:.2f}s)"
        )
        self.breaker_name = name
        self.retry_in = retry_in


class CircuitBreaker:
    """Thread-safe three-state circuit breaker."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 5.0,
        half_open_max_calls: int = 1,
        name: str = "backend",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time}")
        if half_open_max_calls < 1:
            raise ValueError(
                f"half_open_max_calls must be >= 1, got {half_open_max_calls}"
            )
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self.half_open_max_calls = int(half_open_max_calls)
        self.name = name
        self._clock = clock
        self._lock = threading.RLock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        # Cumulative transition counts (also in metrics; kept here so
        # health payloads work with observability disabled).
        self._n_opened = 0
        self._n_half_opens = 0
        self._n_closes = 0
        self._n_rejections = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (performing the lazy open → half-open transition)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        with self._lock:  # reentrant: callers may already hold it
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.recovery_time
            ):
                self._state = HALF_OPEN
                self._probes_inflight = 0
                self._n_half_opens += 1
                metrics.inc(names.RESILIENCE_BREAKER_HALF_OPENS)
                metrics.set_gauge(
                    names.RESILIENCE_BREAKER_STATE, _STATE_GAUGE[HALF_OPEN]
                )

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?  (Reserves a probe when half-open.)

        Every ``allow() == True`` must be balanced by exactly one
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_inflight < self.half_open_max_calls:
                    self._probes_inflight += 1
                    return True
            self._n_rejections += 1
            metrics.inc(names.RESILIENCE_BREAKER_REJECTIONS)
            return False

    def retry_in(self) -> float:
        """Seconds until the next probe could run (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self.recovery_time - (self._clock() - self._opened_at)
            )

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._failures = 0
                self._probes_inflight = 0
                self._n_closes += 1
                metrics.inc(names.RESILIENCE_BREAKER_CLOSES)
                metrics.set_gauge(
                    names.RESILIENCE_BREAKER_STATE, _STATE_GAUGE[CLOSED]
                )
            elif self._state == CLOSED:
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_inflight = 0
                self._n_opened += 1
                metrics.inc(names.RESILIENCE_BREAKER_OPENED)
                metrics.set_gauge(names.RESILIENCE_BREAKER_STATE, _STATE_GAUGE[OPEN])
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._state = OPEN
                    self._opened_at = self._clock()
                    self._n_opened += 1
                    metrics.inc(names.RESILIENCE_BREAKER_OPENED)
                    metrics.set_gauge(
                        names.RESILIENCE_BREAKER_STATE, _STATE_GAUGE[OPEN]
                    )

    # ------------------------------------------------------------------
    def call(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` through the breaker (raising :class:`CircuitOpen`)."""
        if not self.allow():
            raise CircuitOpen(self.name, self.retry_in())
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "recovery_time": self.recovery_time,
                "opened": self._n_opened,
                "half_opens": self._n_half_opens,
                "closes": self._n_closes,
                "rejections": self._n_rejections,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.name!r} state={self.state}>"
