"""Reservation quantization: real platforms take discrete request sizes.

The paper's sequences are real-valued; actual schedulers accept requests in
whole minutes/hours (AWS RIs bill hourly, Slurm walltimes are minutes).
:func:`quantize_sequence` rounds every reservation *up* to a grid (rounding
down could strand jobs between the original and rounded value), merges
collisions, and the ablation in :mod:`repro.experiments.ablations` measures
the cost of that granularity — small for fine grids, and bounded by
``alpha * g`` extra per reservation for grid step ``g``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.sequence import ReservationSequence

__all__ = ["quantize_sequence", "quantization_overhead_bound"]


def quantize_sequence(
    sequence: ReservationSequence,
    granularity: float,
    max_values: int = 10_000,
) -> ReservationSequence:
    """Round every reservation up to a multiple of ``granularity``.

    Collisions (two reservations rounding to the same grid point) merge into
    one — the shorter request was redundant once both round up to the same
    wall.  The result is finite (the materialized prefix only); extend the
    input first to the coverage you need.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    if len(sequence) > max_values:
        raise ValueError(
            f"sequence has {len(sequence)} values; refusing to quantize more "
            f"than {max_values}"
        )
    # ceil with tolerance: a value already on the grid stays put.
    steps = np.ceil(sequence.values / granularity - 1e-9)
    grid = np.unique(steps) * granularity
    values: List[float] = [float(v) for v in grid]
    quantized = ReservationSequence(values, name=f"{sequence.name}@{granularity:g}")
    return quantized


def quantization_overhead_bound(
    sequence: ReservationSequence, granularity: float, cost_model
) -> float:
    """Worst-case extra expected cost from quantization.

    Each reservation grows by at most ``granularity``; a job that would have
    finished in reservation ``k`` still finishes in reservation ``<= k``, so
    the extra cost is bounded by ``(alpha + beta) * granularity`` per
    *paid* reservation.  Using the materialized prefix length ``m``:

    ``overhead <= m * (alpha + beta) * granularity``

    — loose but free of distribution knowledge; the ablation measures the
    actual (much smaller) gap.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    return len(sequence) * (cost_model.alpha + cost_model.beta) * granularity
