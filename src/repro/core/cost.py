"""Affine reservation cost model (Eq. 1-2 of the paper).

A reservation of length ``t_r`` for a job that actually runs ``t`` costs

``alpha * t_r + beta * min(t_r, t) + gamma``

with ``alpha > 0``, ``beta >= 0``, ``gamma >= 0``.  The two platform models of
the evaluation section are provided as presets:

* :meth:`CostModel.reservation_only` — AWS Reserved-Instance pricing
  (pay-what-you-request): ``alpha=1, beta=gamma=0``;
* :meth:`CostModel.neurohpc` — HPC queue model where cost is turnaround time:
  ``alpha=0.95`` (wait-time slope), ``beta=1`` (execution), ``gamma=1.05`` h
  (wait-time intercept), fitted from the Intrepid logs of Fig. 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Parameters ``(alpha, beta, gamma)`` of the affine cost of Eq. (1)."""

    alpha: float = 1.0
    beta: float = 0.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if not self.alpha > 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.beta < 0:
            raise ValueError(f"beta must be nonnegative, got {self.beta}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be nonnegative, got {self.gamma}")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def reservation_only(cls, alpha: float = 1.0) -> "CostModel":
        """RESERVATIONONLY instance: cost linear in the request only."""
        return cls(alpha=alpha, beta=0.0, gamma=0.0)

    @classmethod
    def neurohpc(cls) -> "CostModel":
        """NEUROHPC instance (Section 5.3), times expressed in hours."""
        return cls(alpha=0.95, beta=1.0, gamma=1.05)

    @property
    def is_reservation_only(self) -> bool:
        # Exact sentinel: beta/gamma are user-set constants, not computed.
        return self.beta == 0.0 and self.gamma == 0.0  # repro-lint: disable=RS102 -- exact config sentinel

    # ------------------------------------------------------------------
    # Single-reservation and cumulative costs
    # ------------------------------------------------------------------
    def reservation_cost(self, reserved, executed):
        """Cost of one reservation (Eq. 1), vectorized in both arguments."""
        reserved = np.asarray(reserved, dtype=float)
        executed = np.asarray(executed, dtype=float)
        out = (
            self.alpha * reserved
            + self.beta * np.minimum(reserved, executed)
            + self.gamma
        )
        return out if out.ndim else float(out)

    def failed_reservation_cost(self, reserved):
        """Cost of a reservation the job did not fit in: ``(alpha+beta) t + gamma``."""
        reserved = np.asarray(reserved, dtype=float)
        out = (self.alpha + self.beta) * reserved + self.gamma
        return out if out.ndim else float(out)

    def sequence_cost(self, reservations: Sequence[float], execution_time: float) -> float:
        """Total cost ``C(k, t)`` of running a job of duration ``execution_time``
        through ``reservations`` (Eq. 2).

        ``k`` is the first index with ``t <= t_k``; all earlier reservations
        are paid in full (reservation + wasted execution + overhead).
        """
        t = float(execution_time)
        if t < 0:
            raise ValueError(f"execution time must be nonnegative, got {t}")
        total = 0.0
        for length in reservations:
            if t <= length:
                return total + float(self.reservation_cost(length, t))
            total += float(self.failed_reservation_cost(length))
        last = reservations[-1] if len(reservations) else 0.0
        raise ValueError(
            f"reservation sequence (last={last}) does not cover execution "
            f"time {t}; extend the sequence before costing"
        )

    def omniscient_expected_cost(self, distribution) -> float:
        """Expected cost ``E^o = (alpha+beta) E[X] + gamma`` of the omniscient
        scheduler that reserves exactly the execution time (Section 5.1)."""
        return (self.alpha + self.beta) * distribution.mean() + self.gamma

    def describe(self) -> str:
        return f"CostModel(alpha={self.alpha:g}, beta={self.beta:g}, gamma={self.gamma:g})"
