"""Expected cost of a reservation sequence.

Two independent evaluators:

* :func:`expected_cost_series` — the Theorem 1 rewrite
  ``E(S) = beta E[X] + sum_i (alpha t_{i+1} + beta t_i + gamma) P(X >= t_i)``,
  the production path (fast, handles infinite sequences by truncating once
  the survival weight is negligible);
* :func:`expected_cost_direct` — the defining double integral of Eq. (3),
  segment-by-segment quadrature.  Slower; used to validate Theorem 1 and in
  tests.

Both accept either a :class:`~repro.core.sequence.ReservationSequence` or a
plain array of reservation lengths.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np
from scipy import integrate

from repro.core.cost import CostModel
from repro.core.sequence import MAX_RESERVATIONS, ReservationSequence, SequenceError

__all__ = ["expected_cost_series", "expected_cost_direct", "normalized_cost"]

#: Survival probability below which further series terms are negligible.
DEFAULT_TAIL_TOL = 1e-12


def _as_sequence(seq: Union[ReservationSequence, Sequence[float]]) -> ReservationSequence:
    if isinstance(seq, ReservationSequence):
        return seq
    return ReservationSequence(seq)


def expected_cost_series(
    seq: Union[ReservationSequence, Sequence[float]],
    distribution,
    cost_model: CostModel,
    tail_tol: float = DEFAULT_TAIL_TOL,
) -> float:
    """Expected cost via the Theorem 1 series.

    For bounded distributions the series terminates naturally when a
    reservation reaches the upper support bound (``sf`` becomes 0).  For
    unbounded ones the sequence is extended (through its extender) until the
    survival weight drops below ``tail_tol``; a finite, non-extensible
    sequence that never covers the tail raises :class:`SequenceError`.
    """
    s = _as_sequence(seq)
    alpha, beta, gamma = cost_model.alpha, cost_model.beta, cost_model.gamma
    upper = distribution.upper

    total = beta * distribution.mean()
    # i = 0 term: t_0 = 0, P(X >= 0) = 1.
    total += alpha * s[0] + gamma

    i = 0  # index into s of t_{i} for the term using (t_{i+1}, t_i)
    while True:
        t_i = s[i]
        surv = float(distribution.sf(t_i))
        if surv <= 0.0 or t_i >= upper:
            break
        if surv < tail_tol:
            break
        # Need t_{i+1}.
        if i + 1 >= len(s):
            if not s.is_extensible:
                raise SequenceError(
                    f"sequence {s.name or '<anonymous>'} ends at {s.last} but "
                    f"P(X >= {s.last}) = {surv:.3g} > tail_tol={tail_tol:.3g}; "
                    "the sequence does not cover the distribution tail"
                )
            s.extend_once()
        t_next = s[i + 1]
        total += (alpha * t_next + beta * t_i + gamma) * surv
        i += 1
        if i >= MAX_RESERVATIONS:
            raise SequenceError(
                "expected-cost series did not converge within "
                f"{MAX_RESERVATIONS} terms (last survival={surv:.3g})"
            )
    return total


def expected_cost_direct(
    seq: Union[ReservationSequence, Sequence[float]],
    distribution,
    cost_model: CostModel,
    tail_tol: float = DEFAULT_TAIL_TOL,
) -> float:
    """Expected cost via the defining integral (Eq. 3), by quadrature.

    ``E(S) = sum_k \\int_{t_{k-1}}^{t_k} C(k, t) f(t) dt`` where ``C(k, t)``
    accumulates the ``k-1`` failed reservations plus the successful one.
    """
    s = _as_sequence(seq)
    alpha, beta, gamma = cost_model.alpha, cost_model.beta, cost_model.gamma
    lo, hi = distribution.support()

    total = 0.0
    prefix = 0.0  # cost of failed reservations so far
    prev = 0.0
    k = 0
    while True:
        if k >= len(s):
            if float(distribution.sf(prev)) < tail_tol:
                break
            if not s.is_extensible:
                raise SequenceError(
                    f"finite sequence ends at {s.last} with residual mass "
                    f"{float(distribution.sf(s.last)):.3g}"
                )
            s.extend_once()
        t_k = s[k]
        a, b = max(prev, lo), min(t_k, hi) if math.isfinite(hi) else t_k
        if b > a:
            mass, _ = integrate.quad(distribution.pdf, a, b, limit=200)
            mean_part, _ = integrate.quad(
                lambda t: t * distribution.pdf(t), a, b, limit=200
            )
            total += (prefix + alpha * t_k + gamma) * mass + beta * mean_part
        prefix += (alpha + beta) * t_k + gamma
        prev = t_k
        if t_k >= hi or float(distribution.sf(t_k)) < tail_tol:
            break
        k += 1
    return total


def normalized_cost(
    seq: Union[ReservationSequence, Sequence[float]],
    distribution,
    cost_model: CostModel,
    tail_tol: float = DEFAULT_TAIL_TOL,
) -> float:
    """``E(S) / E^o`` — expected cost normalized by the omniscient scheduler.

    Always >= 1; this is the metric of Tables 2-4 and Figures 3-4.
    """
    return expected_cost_series(seq, distribution, cost_model, tail_tol) / (
        cost_model.omniscient_expected_cost(distribution)
    )
