"""Upper bounds on the optimal first reservation and cost (Theorem 2).

For any distribution with finite second moment,

``A_1 = E[X] + 1 + (alpha+beta)/(2 alpha) (E[X^2] - a^2)
        + (alpha+beta+gamma)/alpha (E[X] - a)``

bounds the optimal ``t_1``, and ``A_2 = beta E[X] + alpha A_1 + gamma``
bounds the optimal expected cost.  The BRUTE-FORCE heuristic searches
``t_1`` on ``[a, A_1]`` (or ``[a, b]`` for bounded supports).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cost import CostModel

__all__ = ["TheoremTwoBounds", "compute_bounds", "t1_search_interval"]


@dataclass(frozen=True)
class TheoremTwoBounds:
    """The pair ``(A_1, A_2)`` of Eqs. (6)-(7)."""

    a1: float
    a2: float


def compute_bounds(distribution, cost_model: CostModel) -> TheoremTwoBounds:
    """Evaluate Eqs. (6)-(7) for ``distribution`` under ``cost_model``."""
    mean = distribution.mean()
    second = distribution.second_moment()
    if not (math.isfinite(mean) and math.isfinite(second)):
        raise ValueError(
            f"Theorem 2 requires finite E[X] and E[X^2]; got mean={mean}, "
            f"E[X^2]={second} for {distribution.describe()}"
        )
    a = distribution.lower
    al, be, ga = cost_model.alpha, cost_model.beta, cost_model.gamma
    a1 = (
        mean
        + 1.0
        + (al + be) / (2.0 * al) * (second - a * a)
        + (al + be + ga) / al * (mean - a)
    )
    a2 = be * mean + al * a1 + ga
    return TheoremTwoBounds(a1=a1, a2=a2)


def t1_search_interval(distribution, cost_model: CostModel) -> tuple[float, float]:
    """Interval ``[a, b]`` over which BRUTE-FORCE scans ``t_1``.

    Bounded support: the support itself (the optimum may be ``b`` exactly,
    cf. Theorem 4 for Uniform).  Unbounded support: ``[a, A_1]``.
    """
    lo, hi = distribution.support()
    if math.isfinite(hi):
        return (lo, hi)
    return (lo, compute_bounds(distribution, cost_model).a1)
