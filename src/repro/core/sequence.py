"""Reservation sequences (Section 2.2).

A strategy's output is a strictly increasing sequence of reservation lengths
that must cover every possible execution time.  For unbounded distributions
the sequence is conceptually infinite; we represent it as a finite prefix
plus an optional *extender* that materializes further terms on demand (the
Monte-Carlo evaluator extends until the largest sampled execution time is
covered).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.observability import metrics
from repro.utils.numeric import MONOTONE_ATOL, first_nonincreasing_index

__all__ = ["ReservationSequence", "SequenceError", "MAX_RESERVATIONS"]

#: Safety cap on materialized reservations.  A correct strategy reaches any
#: realistic execution time in far fewer steps (sequences grow at least
#: linearly); hitting the cap indicates a stalled extender.
MAX_RESERVATIONS = 100_000


class SequenceError(ValueError):
    """Raised for invalid (non-increasing, non-covering) sequences."""


class ReservationSequence:
    """A strictly increasing sequence of reservation lengths.

    Parameters
    ----------
    values:
        Initial reservation lengths ``t_1 < t_2 < ...`` (at least one).
    extend:
        Optional callable ``extend(values: np.ndarray) -> float`` returning
        the next reservation given all current ones.  Must produce strictly
        increasing values; the sequence raises :class:`SequenceError` if it
        does not.
    name:
        Identifier of the generating strategy (used in experiment output).
    """

    def __init__(
        self,
        values: Iterable[float],
        extend: Optional[Callable[[np.ndarray], float]] = None,
        name: str = "",
    ):
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise SequenceError("a reservation sequence needs at least one value")
        if np.any(~np.isfinite(arr)):
            raise SequenceError(f"non-finite reservation in {arr[:5]}...")
        if np.any(arr <= 0.0):
            raise SequenceError("reservation lengths must be positive")
        bad = first_nonincreasing_index(arr)
        if bad != -1:
            raise SequenceError(
                f"reservations must be strictly increasing; "
                f"values[{bad - 1}]={arr[bad - 1]} >= values[{bad}]={arr[bad]}"
            )
        self._values = arr
        self._extend = extend
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Materialized prefix (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    @property
    def is_extensible(self) -> bool:
        return self._extend is not None

    def __len__(self) -> int:
        return int(self._values.size)

    def __getitem__(self, i: int) -> float:
        return float(self._values[i])

    @property
    def first(self) -> float:
        """The first reservation ``t_1`` — the quantity Theorem 3 reduces
        the whole optimization to."""
        return float(self._values[0])

    @property
    def last(self) -> float:
        return float(self._values[-1])

    # ------------------------------------------------------------------
    # Extension
    # ------------------------------------------------------------------
    def extend_once(self) -> float:
        """Materialize one more reservation via the extender."""
        if self._extend is None:
            raise SequenceError(
                f"sequence {self.name or '<anonymous>'} is finite "
                f"(last={self.last}) and has no extender"
            )
        nxt = float(self._extend(self._values))
        if not np.isfinite(nxt) or nxt <= self.last + MONOTONE_ATOL:
            raise SequenceError(
                f"extender for {self.name or '<anonymous>'} produced "
                f"non-increasing value {nxt} after {self.last}"
            )
        self._values = np.append(self._values, nxt)
        metrics.inc("sequence.extensions")
        return nxt

    def ensure_covers(self, t: float) -> None:
        """Extend the sequence until ``last >= t``."""
        t = float(t)
        while self.last < t:
            if len(self) >= MAX_RESERVATIONS:
                raise SequenceError(
                    f"sequence {self.name or '<anonymous>'} exceeded "
                    f"{MAX_RESERVATIONS} reservations without covering {t} "
                    f"(last={self.last}); extender is growing too slowly"
                )
            self.extend_once()

    # ------------------------------------------------------------------
    # Costing (delegates vectorized path to the Monte-Carlo engine)
    # ------------------------------------------------------------------
    def cost_of(self, execution_time: float, cost_model) -> float:
        """Total cost ``C(k, t)`` for one execution time (Eq. 2)."""
        self.ensure_covers(execution_time)
        return cost_model.sequence_cost(self._values, execution_time)

    def index_covering(self, t: float) -> int:
        """0-based index ``k-1`` of the reservation that completes a job of
        duration ``t``."""
        self.ensure_covers(t)
        return int(np.searchsorted(self._values, t, side="left"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(f"{v:.4g}" for v in self._values[:4])
        more = ", ..." if (len(self) > 4 or self.is_extensible) else ""
        return f"<ReservationSequence {self.name or ''} [{head}{more}] len={len(self)}>"


def constant_extender(step: float) -> Callable[[np.ndarray], float]:
    """Extender adding ``step`` each time — the paper's finite-cost witness
    ``t_i = a + i`` of Theorem 2 uses this shape."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    return lambda values: float(values[-1]) + step


def geometric_extender(factor: float) -> Callable[[np.ndarray], float]:
    """Extender multiplying by ``factor`` (e.g. MEAN-DOUBLING's tail)."""
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1, got {factor}")
    return lambda values: float(values[-1]) * factor
