"""Core contribution of the paper: cost model, sequences, expected-cost
evaluators, the Theorem 3 recurrence, Theorem 2 bounds, closed-form optima
and the Appendix C convex extension."""

from repro.core.bounds import TheoremTwoBounds, compute_bounds, t1_search_interval
from repro.core.convex import (
    AffineReservationCost,
    ConvexReservationCost,
    QuadraticReservationCost,
    brute_force_convex_t1,
    expected_cost_convex,
    generate_convex_sequence,
)
from repro.core.cost import CostModel
from repro.core.expectation import (
    expected_cost_direct,
    expected_cost_series,
    normalized_cost,
)
from repro.core.quantize import quantization_overhead_bound, quantize_sequence
from repro.core.optimal import (
    PAPER_EXPONENTIAL_S1,
    exponential_optimal_sequence,
    exponential_reduced_cost,
    exponential_reduced_sequence,
    exponential_s1,
    uniform_optimal_sequence,
)
from repro.core.recurrence import (
    RecurrenceError,
    generate_optimal_sequence,
    next_reservation,
    optimal_sequence_from_t1,
)
from repro.core.sequence import (
    MAX_RESERVATIONS,
    ReservationSequence,
    SequenceError,
)

__all__ = [
    "CostModel",
    "ReservationSequence",
    "SequenceError",
    "MAX_RESERVATIONS",
    "expected_cost_series",
    "expected_cost_direct",
    "normalized_cost",
    "quantize_sequence",
    "quantization_overhead_bound",
    "TheoremTwoBounds",
    "compute_bounds",
    "t1_search_interval",
    "RecurrenceError",
    "next_reservation",
    "generate_optimal_sequence",
    "optimal_sequence_from_t1",
    "uniform_optimal_sequence",
    "exponential_reduced_sequence",
    "exponential_reduced_cost",
    "exponential_s1",
    "exponential_optimal_sequence",
    "PAPER_EXPONENTIAL_S1",
    "ConvexReservationCost",
    "AffineReservationCost",
    "QuadraticReservationCost",
    "generate_convex_sequence",
    "expected_cost_convex",
    "brute_force_convex_t1",
]
