"""Optimal-sequence recurrence (Theorem 3 / Proposition 1, Eq. 11).

Given the first reservation ``t_1``, every later reservation of an *optimal*
sequence is pinned down by

``t_i = (1 - F(t_{i-2})) / f(t_{i-1})
        + (beta/alpha) * ((1 - F(t_{i-1})) / f(t_{i-1}) - t_{i-1})
        - gamma / alpha``

so the whole STOCHASTIC problem reduces to a one-dimensional search over
``t_1``.  Not every ``t_1`` yields a valid (strictly increasing) sequence —
the paper discards those candidates (the gaps in Fig. 3) and so do we, by
raising :class:`RecurrenceError` with the failing index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.cost import CostModel
from repro.core.sequence import ReservationSequence, SequenceError
from repro.observability import metrics
from repro.observability.profiling import profiled
from repro.utils.numeric import MONOTONE_ATOL

__all__ = [
    "RecurrenceError",
    "next_reservation",
    "generate_optimal_sequence",
    "optimal_sequence_from_t1",
]

#: Stop growing a materialized prefix once the survival probability at the
#: latest reservation is below this (the expected-cost series ignores the
#: remainder anyway); the extender keeps the recurrence alive past it.
PREFIX_TAIL_TOL = 1e-12

#: Hard cap on the prefix length generated eagerly.
MAX_PREFIX = 10_000


class RecurrenceError(SequenceError):
    """The Eq. (11) recurrence broke down (non-increasing / non-finite)."""

    def __init__(self, message: str, index: int, values: Optional[List[float]] = None):
        super().__init__(message)
        self.index = index
        self.values = values or []


def next_reservation(
    t_prev2: float,
    t_prev1: float,
    distribution,
    cost_model: CostModel,
) -> float:
    """One step of Eq. (11): compute ``t_i`` from ``t_{i-2}, t_{i-1}``."""
    metrics.inc("recurrence.iterations")
    f = float(distribution.pdf(t_prev1))
    if not np.isfinite(f) or f <= 0.0:
        raise RecurrenceError(
            f"density vanished at t={t_prev1} (f={f}); Eq. (11) undefined",
            index=-1,
        )
    sf_prev2 = float(distribution.sf(t_prev2))
    sf_prev1 = float(distribution.sf(t_prev1))
    a, b, g = cost_model.alpha, cost_model.beta, cost_model.gamma
    return sf_prev2 / f + (b / a) * (sf_prev1 / f - t_prev1) - g / a


@profiled(name="recurrence.generate_optimal_sequence")
def generate_optimal_sequence(
    t1: float,
    distribution,
    cost_model: CostModel,
    tail_tol: float = PREFIX_TAIL_TOL,
    max_len: int = MAX_PREFIX,
) -> List[float]:
    """Materialize the Eq. (11) sequence started at ``t1`` as a list.

    Generation stops when either (a) a reservation reaches the distribution's
    upper bound (bounded support: ``F(t_i) = 1``), or (b) the survival
    probability falls below ``tail_tol`` (unbounded support: the cost series
    has converged).  Raises :class:`RecurrenceError` if the recurrence stalls
    or decreases, which marks ``t1`` as infeasible (Fig. 3 gaps).
    """
    lo, hi = distribution.support()
    t1 = float(t1)
    if t1 <= 0.0:
        raise RecurrenceError(f"t1 must be positive, got {t1}", index=0)
    if t1 >= hi:
        # A single reservation at (or beyond) the upper bound covers all jobs.
        return [min(t1, hi)]

    values: List[float] = [t1]
    prev2, prev1 = 0.0, t1
    while True:
        if len(values) >= max_len:
            raise RecurrenceError(
                f"recurrence from t1={t1} exceeded {max_len} terms "
                f"(last={prev1}, survival={float(distribution.sf(prev1)):.3g})",
                index=len(values),
                values=values,
            )
        try:
            nxt = next_reservation(prev2, prev1, distribution, cost_model)
        except RecurrenceError as exc:
            raise RecurrenceError(str(exc), index=len(values), values=values) from None
        if not np.isfinite(nxt):
            raise RecurrenceError(
                f"recurrence from t1={t1} produced non-finite t_{len(values) + 1}",
                index=len(values),
                values=values,
            )
        if nxt >= hi:
            # Bounded support: clamp the final reservation to the bound.
            values.append(hi)
            return values
        if nxt <= prev1 + MONOTONE_ATOL:
            raise RecurrenceError(
                f"recurrence from t1={t1} stopped increasing at index "
                f"{len(values)}: t={prev1} -> {nxt}",
                index=len(values),
                values=values,
            )
        values.append(nxt)
        prev2, prev1 = prev1, nxt
        if float(distribution.sf(prev1)) < tail_tol:
            return values


def optimal_sequence_from_t1(
    t1: float,
    distribution,
    cost_model: CostModel,
    eager: bool = False,
    tail_tol: float = PREFIX_TAIL_TOL,
) -> ReservationSequence:
    """Lazy Eq. (11) sequence starting at ``t1``.

    By default only ``t_1`` is materialized and the extender applies Eq. (11)
    on demand — this matches the paper's brute-force procedure, where a
    candidate sequence only ever needs to cover the largest *sampled*
    execution time before its validity is decided.  (Near the optimum the
    recurrence sits on a feasibility separatrix: sequences from ``t_1``
    slightly below it collapse eventually, but only beyond the range any
    finite Monte-Carlo evaluation explores.)

    With ``eager=True`` the whole prefix down to survival ``tail_tol`` is
    generated up front, raising :class:`RecurrenceError` immediately for
    infeasible candidates — the right mode for exact series evaluation.
    """
    hi = distribution.upper
    if eager:
        values = generate_optimal_sequence(t1, distribution, cost_model, tail_tol)
    else:
        t1 = float(t1)
        if t1 <= 0.0:
            raise RecurrenceError(f"t1 must be positive, got {t1}", index=0)
        values = [min(t1, hi)]

    def extend(current: np.ndarray) -> float:
        prev2 = float(current[-2]) if current.size >= 2 else 0.0
        prev1 = float(current[-1])
        if prev1 >= hi:
            raise SequenceError(
                f"sequence already covers the support (last={prev1}, upper={hi})"
            )
        nxt = next_reservation(prev2, prev1, distribution, cost_model)
        return min(nxt, hi) if np.isfinite(hi) else nxt

    extender = None if (values[-1] >= hi) else extend
    return ReservationSequence(values, extend=extender, name=f"eq11(t1={t1:.6g})")
