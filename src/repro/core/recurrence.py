"""Optimal-sequence recurrence (Theorem 3 / Proposition 1, Eq. 11).

Given the first reservation ``t_1``, every later reservation of an *optimal*
sequence is pinned down by

``t_i = (1 - F(t_{i-2})) / f(t_{i-1})
        + (beta/alpha) * ((1 - F(t_{i-1})) / f(t_{i-1}) - t_{i-1})
        - gamma / alpha``

so the whole STOCHASTIC problem reduces to a one-dimensional search over
``t_1``.  Not every ``t_1`` yields a valid (strictly increasing) sequence —
the paper discards those candidates (the gaps in Fig. 3) and so do we, by
raising :class:`RecurrenceError` with the failing index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.cost import CostModel
from repro.core.sequence import ReservationSequence, SequenceError
from repro.observability import metrics
from repro.observability.profiling import profiled
from repro.utils.numeric import MONOTONE_ATOL

__all__ = [
    "RecurrenceError",
    "next_reservation",
    "generate_optimal_sequence",
    "generate_sequence_grid",
    "optimal_sequence_from_t1",
]

#: Stop growing a materialized prefix once the survival probability at the
#: latest reservation is below this (the expected-cost series ignores the
#: remainder anyway); the extender keeps the recurrence alive past it.
PREFIX_TAIL_TOL = 1e-12

#: Hard cap on the prefix length generated eagerly.
MAX_PREFIX = 10_000


class RecurrenceError(SequenceError):
    """The Eq. (11) recurrence broke down (non-increasing / non-finite)."""

    def __init__(self, message: str, index: int, values: Optional[List[float]] = None):
        super().__init__(message)
        self.index = index
        self.values = values or []


def next_reservation(
    t_prev2: float,
    t_prev1: float,
    distribution,
    cost_model: CostModel,
) -> float:
    """One step of Eq. (11): compute ``t_i`` from ``t_{i-2}, t_{i-1}``."""
    metrics.inc("recurrence.iterations")
    f = float(distribution.pdf(t_prev1))
    if not np.isfinite(f) or f <= 0.0:
        raise RecurrenceError(
            f"density vanished at t={t_prev1} (f={f}); Eq. (11) undefined",
            index=-1,
        )
    sf_prev2 = float(distribution.sf(t_prev2))
    sf_prev1 = float(distribution.sf(t_prev1))
    a, b, g = cost_model.alpha, cost_model.beta, cost_model.gamma
    return sf_prev2 / f + (b / a) * (sf_prev1 / f - t_prev1) - g / a


@profiled(name="recurrence.generate_optimal_sequence")
def generate_optimal_sequence(
    t1: float,
    distribution,
    cost_model: CostModel,
    tail_tol: float = PREFIX_TAIL_TOL,
    max_len: int = MAX_PREFIX,
) -> List[float]:
    """Materialize the Eq. (11) sequence started at ``t1`` as a list.

    Generation stops when either (a) a reservation reaches the distribution's
    upper bound (bounded support: ``F(t_i) = 1``), or (b) the survival
    probability falls below ``tail_tol`` (unbounded support: the cost series
    has converged).  Raises :class:`RecurrenceError` if the recurrence stalls
    or decreases, which marks ``t1`` as infeasible (Fig. 3 gaps).
    """
    lo, hi = distribution.support()
    t1 = float(t1)
    if t1 <= 0.0:
        raise RecurrenceError(f"t1 must be positive, got {t1}", index=0)
    if t1 >= hi:
        # A single reservation at (or beyond) the upper bound covers all jobs.
        return [min(t1, hi)]

    values: List[float] = [t1]
    prev2, prev1 = 0.0, t1
    while True:
        if len(values) >= max_len:
            raise RecurrenceError(
                f"recurrence from t1={t1} exceeded {max_len} terms "
                f"(last={prev1}, survival={float(distribution.sf(prev1)):.3g})",
                index=len(values),
                values=values,
            )
        try:
            nxt = next_reservation(prev2, prev1, distribution, cost_model)
        except RecurrenceError as exc:
            raise RecurrenceError(str(exc), index=len(values), values=values) from None
        if not np.isfinite(nxt):
            raise RecurrenceError(
                f"recurrence from t1={t1} produced non-finite t_{len(values) + 1}",
                index=len(values),
                values=values,
            )
        if nxt >= hi:
            # Bounded support: clamp the final reservation to the bound.
            values.append(hi)
            return values
        if nxt <= prev1 + MONOTONE_ATOL:
            raise RecurrenceError(
                f"recurrence from t1={t1} stopped increasing at index "
                f"{len(values)}: t={prev1} -> {nxt}",
                index=len(values),
                values=values,
            )
        values.append(nxt)
        prev2, prev1 = prev1, nxt
        if float(distribution.sf(prev1)) < tail_tol:
            return values


@profiled(name="recurrence.generate_sequence_grid")
def generate_sequence_grid(
    t1s: np.ndarray,
    distribution,
    cost_model: CostModel,
    cover: float,
    max_len: int = MAX_PREFIX,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run Eq. (11) for *every* candidate ``t_1`` in lockstep.

    Returns ``(matrix, lengths, feasible)``: ``matrix`` is an ``(S, L)``
    array whose row ``s`` holds candidate ``s``'s reservations padded with
    ``inf``; ``lengths[s]`` is the number of real entries; ``feasible[s]``
    is False exactly when the per-candidate lazy path
    (:func:`optimal_sequence_from_t1` + ``ensure_covers(cover)``) would have
    raised.  Feasible rows are **bit-identical** to the lazy path: each step
    evaluates the same clamp-then-monotonicity checks on the same scalar
    expression, just broadcast over the still-active candidates, so one
    vectorized pdf/sf evaluation per *depth* replaces one per
    (candidate, depth) pair.

    ``cover`` follows the lazy semantics of the brute-force scan: a row is
    complete as soon as its last reservation reaches ``cover`` (the largest
    Monte-Carlo sample), not the distribution's tail.
    """
    t1s = np.asarray(t1s, dtype=float)
    if t1s.ndim != 1 or t1s.size == 0:
        raise ValueError("t1s must be a non-empty 1-D array")
    n_candidates = t1s.size
    metrics.inc("recurrence.grid_candidates", n_candidates)
    hi = float(distribution.upper)
    a, b, g = cost_model.alpha, cost_model.beta, cost_model.gamma

    first = np.minimum(t1s, hi) if np.isfinite(hi) else t1s.copy()
    columns = [first]
    feasible = t1s > 0.0
    active = feasible & (first < cover)
    prev2 = np.zeros(n_candidates)
    prev1 = first.copy()
    depth = 1
    while active.any():
        depth += 1
        if depth > max_len:
            feasible[active] = False
            break
        metrics.inc("recurrence.grid_steps")
        idx = np.nonzero(active)[0]
        p1 = prev1[idx]
        p2 = prev2[idx]
        f = np.asarray(distribution.pdf(p1), dtype=float)
        sf1 = np.asarray(distribution.sf(p1), dtype=float)
        sf2 = np.asarray(distribution.sf(p2), dtype=float)
        bad = ~np.isfinite(f) | (f <= 0.0)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            nxt = sf2 / f + (b / a) * (sf1 / f - p1) - g / a
        bad |= ~np.isfinite(nxt)
        if np.isfinite(hi):
            # Clamp before the monotonicity check, exactly as the lazy
            # extender does (min(nxt, hi) happens before extend_once).
            nxt = np.minimum(nxt, hi)
        bad |= nxt <= p1 + MONOTONE_ATOL
        column = np.full(n_candidates, np.inf)
        good = ~bad
        column[idx[good]] = nxt[good]
        columns.append(column)
        feasible[idx[bad]] = False
        active[idx[bad]] = False
        prev2[idx[good]] = p1[good]
        prev1[idx[good]] = nxt[good]
        done = idx[good][nxt[good] >= cover]
        active[done] = False

    matrix = np.stack(columns, axis=1)
    # Infeasible rows keep whatever prefix they grew before breaking down;
    # pad them fully so downstream kernels can mask on `feasible` alone.
    matrix[~feasible] = np.inf
    lengths = np.isfinite(matrix).sum(axis=1)
    return matrix, lengths, feasible


def optimal_sequence_from_t1(
    t1: float,
    distribution,
    cost_model: CostModel,
    eager: bool = False,
    tail_tol: float = PREFIX_TAIL_TOL,
) -> ReservationSequence:
    """Lazy Eq. (11) sequence starting at ``t1``.

    By default only ``t_1`` is materialized and the extender applies Eq. (11)
    on demand — this matches the paper's brute-force procedure, where a
    candidate sequence only ever needs to cover the largest *sampled*
    execution time before its validity is decided.  (Near the optimum the
    recurrence sits on a feasibility separatrix: sequences from ``t_1``
    slightly below it collapse eventually, but only beyond the range any
    finite Monte-Carlo evaluation explores.)

    With ``eager=True`` the whole prefix down to survival ``tail_tol`` is
    generated up front, raising :class:`RecurrenceError` immediately for
    infeasible candidates — the right mode for exact series evaluation.
    """
    hi = distribution.upper
    if eager:
        values = generate_optimal_sequence(t1, distribution, cost_model, tail_tol)
    else:
        t1 = float(t1)
        if t1 <= 0.0:
            raise RecurrenceError(f"t1 must be positive, got {t1}", index=0)
        values = [min(t1, hi)]

    def extend(current: np.ndarray) -> float:
        prev2 = float(current[-2]) if current.size >= 2 else 0.0
        prev1 = float(current[-1])
        if prev1 >= hi:
            raise SequenceError(
                f"sequence already covers the support (last={prev1}, upper={hi})"
            )
        nxt = next_reservation(prev2, prev1, distribution, cost_model)
        return min(nxt, hi) if np.isfinite(hi) else nxt

    extender = None if (values[-1] >= hi) else extend
    return ReservationSequence(values, extend=extender, name=f"eq11(t1={t1:.6g})")
