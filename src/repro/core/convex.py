"""Convex reservation-cost extension (Appendix C).

The affine model charges ``alpha t_r + beta min(t_r, t) + gamma`` per
reservation.  Appendix C generalizes the reservation part to any smooth
convex ``G``: a reservation of length ``t_r`` costs
``G(t_r) + beta min(t_r, t)``, the expected cost becomes

``E(S) = beta E[X] + sum_i (G(t_{i+1}) + beta t_i) P(X >= t_i)``

and the optimality recurrence (Eq. 37) reads

``t_i = G^{-1}( G'(t_{i-1}) (1-F(t_{i-2}))/f(t_{i-1})
                + beta ((1-F(t_{i-1}))/f(t_{i-1}) - t_{i-1}) )``.

Implemented cost shapes: :class:`AffineReservationCost` (recovers Eq. 11
exactly, used as a consistency check) and :class:`QuadraticReservationCost`
(superlinear pricing, e.g. surge-priced cloud capacity).
"""

from __future__ import annotations

import abc
import math
from typing import List

import numpy as np

from repro.core.sequence import ReservationSequence, SequenceError
from repro.utils.numeric import MONOTONE_ATOL

__all__ = [
    "ConvexReservationCost",
    "AffineReservationCost",
    "QuadraticReservationCost",
    "generate_convex_sequence",
    "expected_cost_convex",
    "brute_force_convex_t1",
]


class ConvexReservationCost(abc.ABC):
    """A smooth convex, strictly increasing reservation cost ``G``."""

    @abc.abstractmethod
    def g(self, x: float) -> float:
        """``G(x)``."""

    @abc.abstractmethod
    def g_prime(self, x: float) -> float:
        """``G'(x)``."""

    @abc.abstractmethod
    def g_inverse(self, y: float) -> float:
        """``G^{-1}(y)`` for ``y >= G(0)``."""


class AffineReservationCost(ConvexReservationCost):
    """``G(x) = alpha x + gamma`` — the base model, for cross-validation."""

    def __init__(self, alpha: float = 1.0, gamma: float = 0.0):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if gamma < 0:
            raise ValueError(f"gamma must be nonnegative, got {gamma}")
        self.alpha = float(alpha)
        self.gamma = float(gamma)

    def g(self, x: float) -> float:
        return self.alpha * x + self.gamma

    def g_prime(self, x: float) -> float:
        return self.alpha

    def g_inverse(self, y: float) -> float:
        return (y - self.gamma) / self.alpha


class QuadraticReservationCost(ConvexReservationCost):
    """``G(x) = a2 x^2 + a1 x + a0`` with ``a2 > 0``, increasing on ``x >= 0``."""

    def __init__(self, a2: float, a1: float = 0.0, a0: float = 0.0):
        if a2 <= 0:
            raise ValueError(f"a2 must be positive for strict convexity, got {a2}")
        if a1 < 0:
            raise ValueError(
                f"a1 must be nonnegative so G is increasing on [0, inf), got {a1}"
            )
        if a0 < 0:
            raise ValueError(f"a0 must be nonnegative, got {a0}")
        self.a2, self.a1, self.a0 = float(a2), float(a1), float(a0)

    def g(self, x: float) -> float:
        return self.a2 * x * x + self.a1 * x + self.a0

    def g_prime(self, x: float) -> float:
        return 2.0 * self.a2 * x + self.a1

    def g_inverse(self, y: float) -> float:
        c = self.a0 - y
        disc = self.a1 * self.a1 - 4.0 * self.a2 * c
        if disc < 0:
            raise ValueError(f"G^-1 undefined: y={y} below the minimum of G")
        return (-self.a1 + math.sqrt(disc)) / (2.0 * self.a2)


def generate_convex_sequence(
    t1: float,
    distribution,
    cost: ConvexReservationCost,
    beta: float = 0.0,
    tail_tol: float = 1e-12,
    max_len: int = 10_000,
) -> List[float]:
    """Materialize the Eq. (37) sequence started at ``t1``."""
    if beta < 0:
        raise ValueError(f"beta must be nonnegative, got {beta}")
    lo, hi = distribution.support()
    t1 = float(t1)
    if t1 <= 0:
        raise SequenceError(f"t1 must be positive, got {t1}")
    if t1 >= hi:
        return [min(t1, hi)]
    values = [t1]
    prev2, prev1 = 0.0, t1
    while True:
        if len(values) >= max_len:
            raise SequenceError(
                f"convex recurrence from t1={t1} exceeded {max_len} terms"
            )
        f = float(distribution.pdf(prev1))
        if not np.isfinite(f) or f <= 0.0:
            raise SequenceError(
                f"density vanished at t={prev1}; Eq. (37) undefined"
            )
        inner = cost.g_prime(prev1) * float(distribution.sf(prev2)) / f + beta * (
            float(distribution.sf(prev1)) / f - prev1
        )
        try:
            nxt = cost.g_inverse(inner)
        except ValueError as exc:
            raise SequenceError(f"convex recurrence from t1={t1}: {exc}") from None
        if not np.isfinite(nxt):
            raise SequenceError(
                f"convex recurrence from t1={t1} produced non-finite value"
            )
        if nxt >= hi:
            values.append(hi)
            return values
        if nxt <= prev1 + MONOTONE_ATOL:
            raise SequenceError(
                f"convex recurrence from t1={t1} stopped increasing "
                f"({prev1} -> {nxt} at index {len(values)})"
            )
        values.append(nxt)
        prev2, prev1 = prev1, nxt
        if float(distribution.sf(prev1)) < tail_tol:
            return values


def expected_cost_convex(
    reservations,
    distribution,
    cost: ConvexReservationCost,
    beta: float = 0.0,
    tail_tol: float = 1e-12,
) -> float:
    """``E(S) = beta E[X] + sum_i (G(t_{i+1}) + beta t_i) P(X >= t_i)``.

    ``reservations`` must already cover the distribution tail (survival below
    ``tail_tol`` at the last reservation) or the bound of a finite support.
    """
    values = np.asarray(
        reservations.values if isinstance(reservations, ReservationSequence) else reservations,
        dtype=float,
    )
    hi = distribution.upper
    total = beta * distribution.mean() + cost.g(float(values[0]))
    for i in range(len(values) - 1):
        surv = float(distribution.sf(values[i]))
        if surv <= 0.0:
            return total
        total += (cost.g(float(values[i + 1])) + beta * float(values[i])) * surv
    last_surv = float(distribution.sf(values[-1]))
    if values[-1] < hi and last_surv > tail_tol:
        raise SequenceError(
            f"sequence ends at {values[-1]} with survival {last_surv:.3g} "
            f"> tail_tol={tail_tol:.3g}; tail not covered"
        )
    return total


def brute_force_convex_t1(
    distribution,
    cost: ConvexReservationCost,
    beta: float = 0.0,
    n_grid: int = 500,
    t1_max: float | None = None,
) -> tuple[float, float, List[float]]:
    """Grid-search ``t_1`` for the convex model; returns
    ``(best_t1, best_cost, best_sequence)``.

    For unbounded supports the scan interval defaults to
    ``[a, mean + 10 std]`` (Theorem 2 only covers the affine case; a moment
    bound of the same flavour is adequate for the quadratic experiments).
    """
    lo, hi = distribution.support()
    if t1_max is None:
        t1_max = hi if math.isfinite(hi) else distribution.mean() + 10.0 * distribution.std()
    best = (math.nan, math.inf, [])  # type: tuple[float, float, List[float]]
    for t1 in np.linspace(max(lo, 1e-9), t1_max, n_grid):
        try:
            seq = generate_convex_sequence(float(t1), distribution, cost, beta)
            val = expected_cost_convex(seq, distribution, cost, beta)
        except SequenceError:
            continue
        if val < best[1]:
            best = (float(t1), float(val), seq)
    if not np.isfinite(best[1]):
        raise SequenceError(
            "no feasible t1 found for the convex model on "
            f"{distribution.describe()}"
        )
    return best
