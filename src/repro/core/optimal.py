"""Closed-form / semi-closed-form optimal strategies (Sections 3.4-3.5).

* **Uniform(a, b)** — Theorem 4: the optimal sequence is the singleton
  ``(b)`` for *any* cost parameters.
* **Exponential(rate), RESERVATIONONLY** — Proposition 2: the optimal
  sequence for ``Exp(1)`` is universal, with ``s_2 = e^{s_1}`` and
  ``s_i = e^{s_{i-1} - s_{i-2}}``; the optimum for ``Exp(rate)`` is
  ``t_i = s_i / rate``.  The constant ``s_1`` has no known closed form; the
  paper reports ``s_1 ~ 0.74219`` from numerical search, which
  :func:`exponential_s1` reproduces (grid scan + ternary refinement).
"""

from __future__ import annotations

import functools
import math
from typing import List

import numpy as np

from repro.core.cost import CostModel
from repro.core.sequence import ReservationSequence

__all__ = [
    "uniform_optimal_sequence",
    "exponential_reduced_sequence",
    "exponential_reduced_cost",
    "exponential_s1",
    "exponential_optimal_sequence",
    "PAPER_EXPONENTIAL_S1",
]

#: Value reported in Section 3.5 of the paper.
PAPER_EXPONENTIAL_S1 = 0.74219


def uniform_optimal_sequence(distribution) -> ReservationSequence:
    """Theorem 4: single reservation at the upper bound ``b``."""
    hi = distribution.upper
    if not math.isfinite(hi):
        raise ValueError(
            f"uniform optimal sequence needs a bounded support, got upper={hi}"
        )
    return ReservationSequence([hi], name="uniform-optimal")


def exponential_reduced_sequence(s1: float, n_terms: int = 200) -> List[float]:
    """The reduced sequence of Proposition 2: ``s_2 = e^{s_1}``,
    ``s_i = e^{s_{i-1} - s_{i-2}}`` for ``i >= 3``.

    Terms are generated until they stop mattering for the cost series
    (``e^{-s_i}`` underflows) or ``n_terms`` is reached.
    """
    if s1 <= 0.0:
        raise ValueError(f"s1 must be positive, got {s1}")
    seq = [float(s1)]
    if n_terms == 1:
        return seq
    if s1 > 700.0:  # e^{-s1} already underflows; the tail is irrelevant.
        return seq
    seq.append(math.exp(s1))
    while len(seq) < n_terms:
        if seq[-1] > 700.0:  # e^{-s} underflows past this; series converged.
            break
        gap = seq[-1] - seq[-2]
        if gap > 700.0:  # next term astronomically large: series converged.
            break
        nxt = math.exp(gap)
        if nxt <= seq[-1]:
            # The recurrence collapsed: this s1 is infeasible.
            raise ValueError(
                f"reduced exponential sequence from s1={s1} stopped increasing "
                f"at term {len(seq) + 1} ({seq[-1]} -> {nxt})"
            )
        seq.append(nxt)
    return seq


def exponential_reduced_cost(s1: float, n_terms: int = 200) -> float:
    """``E_1(s_1) = s_1 + 1 + sum_i e^{-s_i}`` (Proposition 2)."""
    seq = exponential_reduced_sequence(s1, n_terms)
    return s1 + 1.0 + float(np.sum(np.exp(-np.asarray(seq))))


@functools.lru_cache(maxsize=1)
def exponential_s1(refine_iters: int = 60) -> float:
    """Numerically locate the optimal ``s_1`` for ``Exp(1)``.

    The cost ``E_1(s_1)`` is increasing on the feasible region, whose left
    edge is a separatrix of the recurrence: below it the sequence eventually
    stops increasing, above it it diverges (feasible).  The optimum is
    therefore the *smallest feasible* ``s_1``, located by bisection on
    feasibility; we return the feasible endpoint so downstream callers can
    always materialize the sequence.  (The paper reports 0.74219; in exact
    arithmetic the boundary is 0.746542 — see EXPERIMENTS.md for why the
    paper's Monte-Carlo termination lands slightly below it.)
    """

    def feasible(s: float) -> bool:
        try:
            exponential_reduced_sequence(s)
            return True
        except ValueError:
            return False

    lo, hi = 0.5, 1.0  # lo infeasible, hi feasible (both verified below)
    assert not feasible(lo) and feasible(hi)
    for _ in range(refine_iters):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi


def exponential_optimal_sequence(rate: float, s1: float | None = None) -> ReservationSequence:
    """Optimal RESERVATIONONLY sequence for ``Exp(rate)``: ``t_i = s_i / rate``."""
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate}")
    s1 = exponential_s1() if s1 is None else float(s1)
    reduced = exponential_reduced_sequence(s1)
    values = [s / rate for s in reduced]

    def extend(current: np.ndarray) -> float:
        # Continue t_i = exp(rate * (t_{i-1} - t_{i-2})) / rate  (Eq. 11 for Exp).
        prev2 = float(current[-2]) if current.size >= 2 else 0.0
        prev1 = float(current[-1])
        return math.exp(rate * (prev1 - prev2)) / rate

    return ReservationSequence(values, extend=extend, name=f"exp-optimal(rate={rate:g})")


def expected_cost_exponential_optimal(rate: float) -> float:
    """``E(S_lambda) = E_1 / lambda`` (Proposition 2)."""
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate}")
    return exponential_reduced_cost(exponential_s1()) / rate
