"""Online execution of a reservation strategy against a real job.

The library's planning side answers "which sequence should I use?"; this
module is the *runtime* a user drives while actually submitting
reservations:

    session = ReservationSession(sequence, cost_model)
    while True:
        request = session.next_request()
        outcome = platform.run(job, limit=request)   # user's code
        if outcome.finished:
            session.report_success(outcome.runtime)
            break
        session.report_failure()
    print(session.total_cost, session.attempts)

Every attempt is recorded (request, cost, outcome) for auditing, and
:func:`execute` closes the loop in simulation by playing a known execution
time against the session — which is how the integration tests verify that
the online accounting reproduces ``C(k, t)`` exactly.
"""

from __future__ import annotations

import enum
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cost import CostModel
from repro.core.sequence import ReservationSequence
from repro.observability import metrics, tracing

__all__ = ["AttemptOutcome", "Attempt", "ReservationSession", "execute"]


class AttemptOutcome(enum.Enum):
    SUCCESS = "success"
    FAILURE = "failure"


@dataclass(frozen=True)
class Attempt:
    """One submitted reservation and its result."""

    index: int
    requested: float
    outcome: AttemptOutcome
    cost: float
    runtime: Optional[float] = None  # known only on success


class SessionError(RuntimeError):
    """Protocol violation (e.g. reporting twice, or after completion)."""


class ReservationSession:
    """Drives one job through a reservation sequence, tracking cost."""

    def __init__(self, sequence: ReservationSequence, cost_model: CostModel):
        self.sequence = sequence
        self.cost_model = cost_model
        self.attempts: List[Attempt] = []
        self._pending: Optional[float] = None
        self._pending_since: Optional[float] = None
        self._done = False

    # ------------------------------------------------------------------
    @property
    def is_done(self) -> bool:
        return self._done

    @property
    def total_cost(self) -> float:
        return sum(a.cost for a in self.attempts)

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def last_failed_length(self) -> float:
        """Largest reservation known to be too short (0 before any failure).

        This is the session's information state: the job's execution time is
        known to exceed this value.
        """
        failures = [a.requested for a in self.attempts
                    if a.outcome is AttemptOutcome.FAILURE]
        return max(failures, default=0.0)

    @property
    def trace(self) -> List[Dict[str, object]]:
        """Attempt log as plain dicts (serialization-friendly).

        Each entry carries ``index``, ``requested``, ``outcome`` (the string
        value), ``cost``, and the running ``cumulative_cost`` — everything a
        caller or the observability JSONL sink needs without reaching into
        :class:`Attempt` internals.
        """
        out: List[Dict[str, object]] = []
        cumulative = 0.0
        for a in self.attempts:
            cumulative += a.cost
            out.append(
                {
                    "index": a.index,
                    "requested": a.requested,
                    "outcome": a.outcome.value,
                    "cost": a.cost,
                    "cumulative_cost": cumulative,
                }
            )
        return out

    # ------------------------------------------------------------------
    def next_request(self) -> float:
        """The reservation length to submit next."""
        if self._done:
            raise SessionError("job already completed")
        if self._pending is not None:
            raise SessionError(
                f"request of {self._pending} already outstanding; report its "
                "outcome first"
            )
        idx = len(self.attempts)
        while len(self.sequence) <= idx:
            self.sequence.extend_once()
        self._pending = float(self.sequence[idx])
        self._pending_since = _time.perf_counter()
        metrics.inc("session.requests")
        return self._pending

    def report_success(self, runtime: float) -> Attempt:
        """The job finished within the outstanding reservation."""
        req = self._require_pending()
        runtime = float(runtime)
        if runtime < 0:
            raise SessionError(f"negative runtime {runtime}")
        if runtime > req:
            raise SessionError(
                f"reported runtime {runtime} exceeds the reservation {req}; "
                "that attempt cannot have succeeded"
            )
        attempt = Attempt(
            index=len(self.attempts),
            requested=req,
            outcome=AttemptOutcome.SUCCESS,
            cost=float(self.cost_model.reservation_cost(req, runtime)),
            runtime=runtime,
        )
        self.attempts.append(attempt)
        self._pending = None
        self._done = True
        self._record_attempt(attempt)
        return attempt

    def report_failure(self) -> Attempt:
        """The outstanding reservation elapsed without the job finishing."""
        req = self._require_pending()
        attempt = Attempt(
            index=len(self.attempts),
            requested=req,
            outcome=AttemptOutcome.FAILURE,
            cost=float(self.cost_model.failed_reservation_cost(req)),
        )
        self.attempts.append(attempt)
        self._pending = None
        self._record_attempt(attempt)
        return attempt

    def _record_attempt(self, attempt: Attempt) -> None:
        """Emit one ``session.attempt`` span + counters for a closed attempt.

        The span's duration is the wall time between ``next_request`` and the
        report — the window in which the caller actually ran the job.
        """
        metrics.inc("session.attempts")
        metrics.inc(
            "session.successes"
            if attempt.outcome is AttemptOutcome.SUCCESS
            else "session.failures"
        )
        since, self._pending_since = self._pending_since, None
        tracing.record_event(
            "session.attempt",
            duration=(_time.perf_counter() - since) if since is not None else 0.0,
            index=attempt.index,
            requested=attempt.requested,
            outcome=attempt.outcome.value,
            cost=attempt.cost,
            cumulative_cost=self.total_cost,
        )

    def _require_pending(self) -> float:
        if self._pending is None:
            raise SessionError("no outstanding request; call next_request first")
        return self._pending


def execute(
    session: ReservationSession, execution_time: float, max_attempts: int = 10_000
) -> float:
    """Play a known ``execution_time`` against ``session`` to completion;
    returns the total cost (== ``C(k, t)`` of Eq. 2)."""
    t = float(execution_time)
    if t < 0:
        raise ValueError(f"execution time must be nonnegative, got {t}")
    for _ in range(max_attempts):
        request = session.next_request()
        if t <= request:
            session.report_success(t)
            return session.total_cost
        session.report_failure()
    raise RuntimeError(
        f"job of duration {t} not completed within {max_attempts} attempts"
    )
