"""Adaptive replanning: re-derive the strategy after every failure.

After a failed reservation of length ``c`` the job's law is ``X | X > c``
(:class:`LeftTruncated`).  An *adaptive* scheduler re-runs its strategy on
that conditional law before each new request, instead of walking a
pre-computed sequence.

A classical observation (which our tests verify empirically): for the
*optimal* policy this adaptivity gains nothing — the Theorem 5 DP already
conditions on survival at every step (its value function ``E*_i`` *is* the
optimal cost given ``X >= v_i``), so replanning reproduces the same
suffixes.  For sub-optimal heuristics, however, replanning can help: e.g.
MEAN-STDEV restarted on the conditional law adapts its step to the
conditional spread.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.cost import CostModel
from repro.distributions.base import Distribution
from repro.distributions.truncated import LeftTruncated
from repro.strategies.base import Strategy

__all__ = ["AdaptiveReplanner"]


class AdaptiveReplanner:
    """Wraps a strategy; produces each next request from the conditional law.

    Parameters
    ----------
    strategy_factory:
        Zero-argument callable returning a fresh strategy (so stateful
        strategies like BRUTE-FORCE are rebuilt per replan).
    distribution / cost_model:
        The base job law and platform costs.
    """

    def __init__(
        self,
        strategy_factory: Callable[[], Strategy],
        distribution: Distribution,
        cost_model: CostModel,
    ):
        self.strategy_factory = strategy_factory
        self.distribution = distribution
        self.cost_model = cost_model
        self._history: List[float] = []  # failed reservation lengths

    @property
    def knowledge_cut(self) -> float:
        """Largest length the job is known to exceed."""
        return max(self._history, default=0.0)

    def current_distribution(self) -> Distribution:
        cut = self.knowledge_cut
        if cut <= self.distribution.lower:
            return self.distribution
        return LeftTruncated(self.distribution, cut)

    def next_request(self) -> float:
        """Re-derive the strategy on the conditional law; return its t_1.

        The returned request is forced strictly above the knowledge cut (a
        replanned heuristic could otherwise propose an already-failed
        length).
        """
        dist = self.current_distribution()
        strategy = self.strategy_factory()
        seq = strategy.sequence(dist, self.cost_model)
        request = seq.first
        cut = self.knowledge_cut
        if request <= cut:
            # Walk the replanned sequence to the first useful entry.
            i = 0
            while request <= cut:
                i += 1
                while len(seq) <= i:
                    seq.extend_once()
                request = seq[i]
        return float(request)

    def record_failure(self, requested: float) -> None:
        requested = float(requested)
        if requested <= self.knowledge_cut:
            raise ValueError(
                f"failed request {requested} is not beyond what is already "
                f"known ({self.knowledge_cut})"
            )
        self._history.append(requested)

    def run(self, execution_time: float, max_attempts: int = 1000) -> tuple[float, int]:
        """Run a job of known duration adaptively; returns (cost, attempts)."""
        t = float(execution_time)
        if t < 0:
            raise ValueError(f"execution time must be nonnegative, got {t}")
        total = 0.0
        for attempt in range(1, max_attempts + 1):
            request = self.next_request()
            if t <= request:
                total += float(self.cost_model.reservation_cost(request, t))
                return total, attempt
            total += float(self.cost_model.failed_reservation_cost(request))
            self.record_failure(request)
        raise RuntimeError(
            f"job of duration {t} not completed within {max_attempts} attempts"
        )
