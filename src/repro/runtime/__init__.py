"""Online runtime: reservation sessions and adaptive replanning."""

from repro.runtime.replanning import AdaptiveReplanner
from repro.runtime.session import (
    Attempt,
    AttemptOutcome,
    ReservationSession,
    execute,
)

__all__ = [
    "ReservationSession",
    "Attempt",
    "AttemptOutcome",
    "execute",
    "AdaptiveReplanner",
]
