"""Ablation studies for the design choices DESIGN.md calls out.

* **A1 — evaluator agreement**: the Monte-Carlo estimator (Eq. 13) versus
  the exact Theorem 1 series, per distribution; quantifies MC noise at the
  paper's N=1000.
* **A2 — brute-force grid size**: best normalized cost versus M; shows the
  landscape is flat enough that modest grids already reach the plateau.
* **A3 — truncation epsilon**: DP cost versus the truncation quantile;
  heavy tails need small eps, light tails do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cost import CostModel
from repro.core.expectation import expected_cost_series
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.simulation.evaluator import evaluate_strategy
from repro.simulation.monte_carlo import monte_carlo_expected_cost
from repro.strategies.brute_force import BruteForce
from repro.strategies.discretized_dp import DiscretizedDP
from repro.strategies.mean_by_mean import MeanByMean
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = [
    "EvaluatorAgreement",
    "run_ablation_evaluator",
    "format_ablation_evaluator",
    "run_ablation_bruteforce_grid",
    "format_ablation_bruteforce_grid",
    "run_ablation_truncation",
    "format_ablation_truncation",
    "run_ablation_tail",
    "format_ablation_tail",
]


# ----------------------------------------------------------------------
# A1: Monte-Carlo vs exact series
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluatorAgreement:
    distribution: str
    series_cost: float
    mc_cost: float
    mc_std_error: float

    @property
    def z_score(self) -> float:
        """How many MC standard errors apart the two evaluators are."""
        if self.mc_std_error == 0:
            return 0.0
        return abs(self.mc_cost - self.series_cost) / self.mc_std_error


def run_ablation_evaluator(
    config: ExperimentConfig = PAPER,
) -> List[EvaluatorAgreement]:
    """Compare evaluators on the MEAN-BY-MEAN sequence (deterministic and
    cheap to rebuild) for every distribution."""
    cost_model = CostModel.reservation_only()
    strategy = MeanByMean()
    out: List[EvaluatorAgreement] = []
    rngs = spawn_generators(config.seed, len(paper_distributions()))
    for (name, dist), rng in zip(paper_distributions().items(), rngs):
        seq = strategy.sequence(dist, cost_model)
        exact = expected_cost_series(seq, dist, cost_model)
        seq2 = strategy.sequence(dist, cost_model)
        mc = monte_carlo_expected_cost(
            seq2, dist, cost_model, n_samples=config.n_samples, seed=rng
        )
        out.append(
            EvaluatorAgreement(
                distribution=name,
                series_cost=exact,
                mc_cost=mc.mean_cost,
                mc_std_error=mc.std_error,
            )
        )
    return out


def format_ablation_evaluator(rows: List[EvaluatorAgreement]) -> str:
    return format_table(
        ["Distribution", "series E(S)", "MC E(S)", "MC SE", "z"],
        [
            [
                r.distribution,
                f"{r.series_cost:.4f}",
                f"{r.mc_cost:.4f}",
                f"{r.mc_std_error:.4f}",
                f"{r.z_score:.2f}",
            ]
            for r in rows
        ],
        title="Ablation A1: exact Theorem-1 series vs Monte-Carlo (Eq. 13), "
        "Mean-by-Mean sequences",
    )


# ----------------------------------------------------------------------
# A2: brute-force grid size
# ----------------------------------------------------------------------
DEFAULT_GRID_SIZES = (10, 50, 100, 500, 1000, 5000)


def run_ablation_bruteforce_grid(
    distribution_names: Tuple[str, ...] = ("exponential", "lognormal"),
    grid_sizes: Tuple[int, ...] = DEFAULT_GRID_SIZES,
    config: ExperimentConfig = PAPER,
) -> Dict[str, Dict[int, float]]:
    """Best normalized cost vs M (series-evaluated: isolates grid resolution
    from MC noise)."""
    cost_model = CostModel.reservation_only()
    dists = paper_distributions()
    out: Dict[str, Dict[int, float]] = {}
    for name in distribution_names:
        dist = dists[name]
        omniscient = cost_model.omniscient_expected_cost(dist)
        out[name] = {}
        for m in grid_sizes:
            bf = BruteForce(m_grid=m, evaluation="series")
            scan = bf.scan(dist, cost_model)
            out[name][m] = scan.best_cost / omniscient
    return out


def format_ablation_bruteforce_grid(result: Dict[str, Dict[int, float]]) -> str:
    grid_sizes = sorted(next(iter(result.values())))
    return format_table(
        ["Distribution"] + [f"M={m}" for m in grid_sizes],
        [
            [name] + [f"{by_m[m]:.4f}" for m in grid_sizes]
            for name, by_m in result.items()
        ],
        title="Ablation A2: Brute-Force best normalized cost vs grid size M "
        "(exact series evaluation)",
    )


# ----------------------------------------------------------------------
# A3: truncation epsilon
# ----------------------------------------------------------------------
DEFAULT_EPSILONS = (1e-2, 1e-3, 1e-5, 1e-7, 1e-9)


def run_ablation_truncation(
    distribution_names: Tuple[str, ...] = ("weibull", "pareto", "lognormal"),
    epsilons: Tuple[float, ...] = DEFAULT_EPSILONS,
    config: ExperimentConfig = PAPER,
) -> Dict[str, Dict[float, float]]:
    """EQUAL-PROBABILITY DP normalized cost vs truncation epsilon
    (heavy-tailed laws are the interesting cases)."""
    cost_model = CostModel.reservation_only()
    dists = paper_distributions()
    rngs = spawn_generators(config.seed, len(distribution_names) * len(epsilons))
    out: Dict[str, Dict[float, float]] = {}
    i = 0
    for name in distribution_names:
        dist = dists[name]
        out[name] = {}
        for eps in epsilons:
            strategy = DiscretizedDP(
                "equal_probability", n=config.n_discrete, epsilon=eps
            )
            record = evaluate_strategy(
                strategy,
                dist,
                cost_model,
                method="monte_carlo",
                n_samples=config.n_samples,
                seed=rngs[i],
            )
            out[name][eps] = record.normalized_cost
            i += 1
    return out


def format_ablation_truncation(result: Dict[str, Dict[float, float]]) -> str:
    epsilons = sorted(next(iter(result.values())), reverse=True)
    return format_table(
        ["Distribution"] + [f"eps={e:g}" for e in epsilons],
        [
            [name] + [f"{by_eps[e]:.3f}" for e in epsilons]
            for name, by_eps in result.items()
        ],
        title="Ablation A3: Equal-probability DP cost vs truncation epsilon",
    )


# ----------------------------------------------------------------------
# A4: tail heaviness (Weibull shape sweep)
# ----------------------------------------------------------------------
DEFAULT_SHAPES = (0.3, 0.5, 0.8, 1.0, 1.5, 3.0)


def run_ablation_tail(
    shapes: Tuple[float, ...] = DEFAULT_SHAPES,
    config: ExperimentConfig = PAPER,
) -> Dict[float, Dict[str, float]]:
    """How tail heaviness drives strategy difficulty.

    The paper instantiates Weibull at k=0.5 (its hardest unbounded law in
    Table 2).  Sweeping the shape k — heavier tails as k falls — shows two
    regimes (all costs exact, series-evaluated):

    * light-to-moderate tails (k >= 0.5): the DP beats MEAN-DOUBLING and the
      gap grows as the tail lightens (doubling overshoots predictable jobs);
    * extreme tails (k ~ 0.3): the truncation-based DP *degrades below*
      simple doubling — the mass beyond Q(1-eps) (which the DP never plans
      for and covers only via its fallback extension) dominates the cost,
      while geometric doubling is tail-agnostic.  This quantifies the limits
      of the paper's discretization approach outside its evaluated range.
    """
    from repro.distributions.weibull import Weibull
    from repro.strategies.mean_doubling import MeanDoubling

    cost_model = CostModel.reservation_only()
    out: Dict[float, Dict[str, float]] = {}
    for k in shapes:
        dist = Weibull(scale=1.0, shape=k)
        row: Dict[str, float] = {}
        for strategy in (
            DiscretizedDP("equal_probability", n=min(config.n_discrete, 500)),
            MeanDoubling(),
        ):
            record = evaluate_strategy(
                strategy, dist, cost_model, method="series"
            )
            row[strategy.name] = record.normalized_cost
        out[k] = row
    return out


def format_ablation_tail(result: Dict[float, Dict[str, float]]) -> str:
    shapes = sorted(result)
    return format_table(
        ["Weibull shape k", "equal_probability_dp", "mean_doubling", "gap"],
        [
            [
                f"{k:g}",
                f"{result[k]['equal_probability_dp']:.3f}",
                f"{result[k]['mean_doubling']:.3f}",
                f"{result[k]['mean_doubling'] / result[k]['equal_probability_dp']:.3f}x",
            ]
            for k in shapes
        ],
        title="Ablation A4: tail heaviness (Weibull shape sweep, exact "
        "normalized costs; k<1 = heavy tail)",
    )
