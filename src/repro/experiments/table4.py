"""Table 4 — discretization convergence in the number of samples ``n``.

For both schemes (EQUAL-TIME, EQUAL-PROBABILITY) and
``n in {10, 25, 50, 100, 250, 500, 1000}``, the normalized expected cost of
the DP sequence.  The paper's headline: costs decrease with ``n`` and
converge to ~BRUTE-FORCE by ``n = 1000``, with the heavy-tailed laws
(Weibull k=0.5, Pareto) converging slowest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cost import CostModel
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.simulation.evaluator import evaluate_strategy
from repro.strategies.discretized_dp import DiscretizedDP
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = ["Table4Result", "run_table4", "format_table4", "SAMPLE_COUNTS"]

#: The n values of Table 4.
SAMPLE_COUNTS = (10, 25, 50, 100, 250, 500, 1000)

SCHEMES = ("equal_time", "equal_probability")


@dataclass(frozen=True)
class Table4Result:
    """costs[(distribution, scheme, n)] -> normalized expected cost."""

    costs: Dict[Tuple[str, str, int], float]
    sample_counts: Tuple[int, ...]
    config: ExperimentConfig

    def series(self, distribution: str, scheme: str) -> List[float]:
        """Normalized costs across the n sweep for one (distribution, scheme)."""
        return [self.costs[(distribution, scheme, n)] for n in self.sample_counts]


def run_table4(
    config: ExperimentConfig = PAPER,
    sample_counts: Tuple[int, ...] = SAMPLE_COUNTS,
) -> Table4Result:
    """Regenerate Table 4."""
    cost_model = CostModel.reservation_only()
    distributions = paper_distributions()
    rngs = spawn_generators(config.seed, len(distributions))

    costs: Dict[Tuple[str, str, int], float] = {}
    for (dist_name, dist), rng in zip(distributions.items(), rngs):
        for scheme in SCHEMES:
            for n in sample_counts:
                strategy = DiscretizedDP(scheme, n=n, epsilon=config.epsilon)
                record = evaluate_strategy(
                    strategy,
                    dist,
                    cost_model,
                    method="monte_carlo",
                    n_samples=config.n_samples,
                    seed=rng,
                )
                costs[(dist_name, scheme, n)] = record.normalized_cost
    return Table4Result(costs=costs, sample_counts=sample_counts, config=config)


def format_table4(result: Table4Result) -> str:
    headers = ["Distribution"] + [
        f"{scheme[:5]} n={n}" for scheme in SCHEMES for n in result.sample_counts
    ]
    distributions = sorted({k[0] for k in result.costs}, key=lambda d: d)
    # Preserve the paper's row order.
    order = list(paper_distributions())
    distributions = [d for d in order if d in distributions]
    rows: List[List[str]] = []
    for dist in distributions:
        cells = [dist]
        for scheme in SCHEMES:
            for n in result.sample_counts:
                cells.append(f"{result.costs[(dist, scheme, n)]:.2f}")
        rows.append(cells)
    return format_table(
        headers,
        rows,
        title="Table 4: discretization-based heuristics vs number of samples n",
    )
