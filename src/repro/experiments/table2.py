"""Table 2 — normalized expected costs of all heuristics, RESERVATIONONLY.

For each of the nine Table 1 distributions and each of the seven heuristics,
estimate ``E(S) / E^o`` by the paper's Monte-Carlo process, and report each
non-brute-force heuristic's ratio to BRUTE-FORCE (the bracketed values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cost import CostModel
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.simulation.evaluator import evaluate_on_samples
from repro.simulation.results import EvaluationRecord
from repro.strategies.registry import PAPER_STRATEGY_ORDER, paper_strategies
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = ["Table2Result", "run_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Result:
    """records[distribution][strategy] -> EvaluationRecord."""

    records: Dict[str, Dict[str, EvaluationRecord]]
    config: ExperimentConfig

    def normalized(self, distribution: str, strategy: str) -> float:
        return self.records[distribution][strategy].normalized_cost

    def vs_brute_force(self, distribution: str, strategy: str) -> float:
        """The bracketed ratio of Table 2."""
        row = self.records[distribution]
        return row[strategy].expected_cost / row["brute_force"].expected_cost


def run_table2(config: ExperimentConfig = PAPER) -> Table2Result:
    """Regenerate Table 2."""
    cost_model = CostModel.reservation_only()
    distributions = paper_distributions()
    rngs = spawn_generators(config.seed, len(distributions))

    records: Dict[str, Dict[str, EvaluationRecord]] = {}
    for (dist_name, dist), rng in zip(distributions.items(), rngs):
        strategies = paper_strategies(
            m_grid=config.m_grid,
            n_samples=config.n_samples,
            n_discrete=config.n_discrete,
            epsilon=config.epsilon,
            seed=rng,
        )
        # Common random numbers: every heuristic in a row is scored on the
        # same jobs (and BRUTE-FORCE optimizes on those same jobs), so the
        # bracketed ratios reflect strategy quality only.
        samples = dist.rvs(config.n_samples, seed=rng)
        row: Dict[str, EvaluationRecord] = {}
        for strat_name in PAPER_STRATEGY_ORDER:
            strategy = strategies[strat_name]
            if strat_name == "brute_force":
                sequence = strategy.sequence(dist, cost_model, samples=samples)
            else:
                sequence = strategy.sequence(dist, cost_model)
            row[strat_name] = evaluate_on_samples(
                sequence, dist, cost_model, samples, strategy_name=strat_name
            )
        records[dist_name] = row
    return Table2Result(records=records, config=config)


def format_table2(result: Table2Result) -> str:
    """Render in the paper's layout: normalized cost, with the ratio to
    BRUTE-FORCE in brackets for the other heuristics."""
    headers = ["Distribution", "Brute-Force"] + [
        s for s in PAPER_STRATEGY_ORDER if s != "brute_force"
    ]
    rows: List[List[str]] = []
    for dist_name, row in result.records.items():
        cells = [dist_name, f"{row['brute_force'].normalized_cost:.2f}"]
        for strat in PAPER_STRATEGY_ORDER:
            if strat == "brute_force":
                continue
            ratio = result.vs_brute_force(dist_name, strat)
            cells.append(f"{row[strat].normalized_cost:.2f} ({ratio:.2f})")
        rows.append(cells)
    return format_table(
        headers,
        rows,
        title="Table 2: normalized expected costs, ReservationOnly scenario",
    )
