"""Pricing decision study — the Section 5.2 RI-vs-On-Demand discussion.

The paper observes that Reserved Instances pay off whenever
``E(S)/E^o <= c_OD / c_RI`` and that AWS's ratio is ~4.  This experiment
computes, per distribution, the *break-even price ratio* (the normalized
cost of the best reservation strategy, exactly evaluated) and the decision
at several market ratios — the cost-evaluation tool the related work ([6])
says users need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.cost import CostModel
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.reservation_only import ReservationOnlyPlatform
from repro.simulation.evaluator import evaluate_strategy
from repro.strategies.discretized_dp import EqualProbabilityDP
from repro.utils.tables import format_table

__all__ = ["PricingRow", "run_pricing_experiment", "format_pricing_experiment"]

DEFAULT_RATIOS = (1.5, 2.0, 4.0)


@dataclass(frozen=True)
class PricingRow:
    distribution: str
    break_even_ratio: float  # normalized cost of the best strategy
    decisions: Dict[float, bool]  # price ratio -> does RI win?
    savings_at_aws: float  # fraction of the OD bill saved at ratio 4


def run_pricing_experiment(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    config: ExperimentConfig = PAPER,
) -> List[PricingRow]:
    """Exact (series-evaluated) break-even analysis for all nine laws."""
    platform = ReservationOnlyPlatform()
    cost_model = CostModel.reservation_only()
    strategy = EqualProbabilityDP(n=min(config.n_discrete, 600),
                                  epsilon=config.epsilon)
    rows: List[PricingRow] = []
    for name, dist in paper_distributions().items():
        record = evaluate_strategy(strategy, dist, cost_model, method="series")
        normalized = record.normalized_cost
        decisions = {
            float(r): platform.compare_with_on_demand(normalized, r).reserved_wins
            for r in ratios
        }
        rows.append(
            PricingRow(
                distribution=name,
                break_even_ratio=normalized,
                decisions=decisions,
                savings_at_aws=platform.compare_with_on_demand(
                    normalized, 4.0
                ).saving_fraction,
            )
        )
    return rows


def format_pricing_experiment(rows: List[PricingRow]) -> str:
    ratios = sorted(rows[0].decisions) if rows else []
    headers = ["Distribution", "break-even c_OD/c_RI"] + [
        f"RI wins @ {r:g}x" for r in ratios
    ] + ["savings @ 4x"]
    table_rows: List[List[str]] = []
    for r in rows:
        table_rows.append(
            [r.distribution, f"{r.break_even_ratio:.3f}"]
            + ["yes" if r.decisions[x] else "no" for x in ratios]
            + [f"{100 * r.savings_at_aws:.0f}%"]
        )
    return format_table(
        headers,
        table_rows,
        title="Pricing study (Section 5.2): Reserved-Instance break-even "
        "ratios per workload (exact series evaluation)",
    )
