"""Figure 4 — NEUROHPC robustness sweep.

All seven heuristics on the HPC turnaround-time model (alpha=0.95, beta=1,
gamma=1.05 h) with the VBMQA LogNormal workload, while the distribution's
mean and standard deviation are scaled by factors up to 10 from the
trace-fitted base (mean ~0.348 h, std ~0.072 h).

Expected shape: BRUTE-FORCE ~ EQUAL-TIME ~ EQUAL-PROBABILITY, clearly below
the MEAN-*/MEDIAN-* heuristics, across the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.neurohpc import NeuroHPCPlatform, scaled_workload
from repro.simulation.evaluator import evaluate_on_samples
from repro.strategies.registry import PAPER_STRATEGY_ORDER, paper_strategies
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = ["Fig4Result", "run_fig4", "format_fig4", "DEFAULT_SCALES"]

#: (mean_scale, std_scale) sweep points: the paper varies both up to x10.
DEFAULT_SCALES: Tuple[Tuple[float, float], ...] = (
    (1.0, 1.0),
    (2.0, 2.0),
    (5.0, 5.0),
    (10.0, 10.0),
    (1.0, 10.0),
    (10.0, 1.0),
)


@dataclass(frozen=True)
class Fig4Result:
    """costs[(mean_scale, std_scale)][strategy] -> normalized cost."""

    costs: Dict[Tuple[float, float], Dict[str, float]]
    config: ExperimentConfig

    def series(self, strategy: str) -> List[float]:
        return [row[strategy] for row in self.costs.values()]


def run_fig4(
    config: ExperimentConfig = PAPER,
    scales: Tuple[Tuple[float, float], ...] = DEFAULT_SCALES,
) -> Fig4Result:
    """Regenerate the Fig. 4 sweep."""
    platform = NeuroHPCPlatform()
    cost_model = platform.cost_model()
    rngs = spawn_generators(config.seed, len(scales))

    costs: Dict[Tuple[float, float], Dict[str, float]] = {}
    for (mean_scale, std_scale), rng in zip(scales, rngs):
        dist = scaled_workload(mean_scale, std_scale)
        strategies = paper_strategies(
            m_grid=config.m_grid,
            n_samples=config.n_samples,
            n_discrete=config.n_discrete,
            epsilon=config.epsilon,
            seed=rng,
        )
        samples = dist.rvs(config.n_samples, seed=rng)
        row: Dict[str, float] = {}
        for name in PAPER_STRATEGY_ORDER:
            strategy = strategies[name]
            if name == "brute_force":
                sequence = strategy.sequence(dist, cost_model, samples=samples)
            else:
                sequence = strategy.sequence(dist, cost_model)
            record = evaluate_on_samples(
                sequence, dist, cost_model, samples, strategy_name=name
            )
            row[name] = record.normalized_cost
        costs[(mean_scale, std_scale)] = row
    return Fig4Result(costs=costs, config=config)


def format_fig4(result: Fig4Result) -> str:
    from repro.utils.ascii_plot import bar_chart

    headers = ["mean x", "std x"] + list(PAPER_STRATEGY_ORDER)
    rows: List[List[str]] = []
    for (ms, ss), row in result.costs.items():
        rows.append(
            [f"{ms:g}", f"{ss:g}"] + [f"{row[s]:.3f}" for s in PAPER_STRATEGY_ORDER]
        )
    table = format_table(
        headers,
        rows,
        title="Figure 4: NeuroHPC normalized costs across workload scalings "
        "(alpha=0.95, beta=1, gamma=1.05 h)",
    )
    # Bar view of the base workload (the paper's headline comparison).
    base_key = next(iter(result.costs))
    base = result.costs[base_key]
    bars = bar_chart(
        list(PAPER_STRATEGY_ORDER),
        [base[s] for s in PAPER_STRATEGY_ORDER],
        width=36,
        unit="x",
    )
    return (
        f"{table}\n\nBase workload (mean x{base_key[0]:g}, std x{base_key[1]:g}), "
        f"normalized cost:\n{bars}"
    )
