"""Extension experiment E4 — in-vivo validation inside the batch queue.

The paper evaluates NEUROHPC strategies against the fitted affine wait
model.  E4 removes the model: VBMQA-like jobs flow through the *simulated*
cluster (EASY backfilling), each reservation attempt is a real queue
submission, and kills trigger resubmission.  We compare

* the realized mean turnaround per strategy (all queueing feedback included),
* against the model-predicted ordering of Fig. 4.

The headline to verify: the ordering survives contact with a real queue —
the DP/BF family still wins — even though the affine model is only an
approximation of the simulator's wait behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.batchsim.reservation_flow import FlowResult, run_reservation_flow
from repro.core.cost import CostModel
from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.neurohpc import vbmqa_hours_distribution
from repro.simulation.evaluator import evaluate_strategy
from repro.strategies.registry import paper_strategies
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = ["InVivoRow", "run_invivo_experiment", "format_invivo_experiment"]

#: Strategies compared in vivo (BRUTE-FORCE is represented by the DP twins —
#: they are indistinguishable in Fig. 4 and deterministic to rebuild).
STRATEGY_SUBSET = (
    "equal_probability_dp",
    "equal_time_dp",
    "mean_by_mean",
    "mean_doubling",
    "median_by_median",
)


@dataclass(frozen=True)
class InVivoRow:
    strategy: str
    realized_turnaround: float  # simulated queue, hours
    realized_p95: float
    mean_attempts: float
    model_normalized: float  # the paper-model prediction (series-evaluated)


def run_invivo_experiment(
    config: ExperimentConfig = PAPER,
    n_jobs: int = 600,
    total_nodes: int = 16,
    arrival_rate: float = 20.0,
) -> List[InVivoRow]:
    """Run the strategy subset through the simulated queue."""
    distribution = vbmqa_hours_distribution()
    cost_model = CostModel.neurohpc()
    strategies = paper_strategies(
        m_grid=config.m_grid,
        n_samples=config.n_samples,
        n_discrete=min(config.n_discrete, 400),
        epsilon=config.epsilon,
        seed=config.seed,
    )
    rngs = spawn_generators(config.seed, len(STRATEGY_SUBSET))

    rows: List[InVivoRow] = []
    for name, rng in zip(STRATEGY_SUBSET, rngs):
        strategy = strategies[name]
        flow: FlowResult = run_reservation_flow(
            strategy,
            distribution,
            n_jobs=n_jobs,
            total_nodes=total_nodes,
            arrival_rate=arrival_rate,
            seed=config.seed,  # same jobs & arrivals for every strategy
            cost_model=cost_model,
        )
        model = evaluate_strategy(
            strategy, distribution, cost_model, method="series"
        )
        rows.append(
            InVivoRow(
                strategy=name,
                realized_turnaround=flow.mean_turnaround(),
                realized_p95=flow.p95_turnaround(),
                mean_attempts=flow.mean_attempts(),
                model_normalized=model.normalized_cost,
            )
        )
    return rows


def format_invivo_experiment(rows: List[InVivoRow]) -> str:
    return format_table(
        [
            "Strategy",
            "realized turnaround (h)",
            "realized p95 (h)",
            "attempts/job",
            "model prediction (norm.)",
        ],
        [
            [
                r.strategy,
                f"{r.realized_turnaround:.3f}",
                f"{r.realized_p95:.3f}",
                f"{r.mean_attempts:.2f}",
                f"{r.model_normalized:.3f}",
            ]
            for r in rows
        ],
        title="Extension E4: strategies inside the simulated batch queue "
        "(VBMQA workload, EASY backfilling)",
    )
