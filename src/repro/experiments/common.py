"""Shared configuration for the experiment harness.

Every experiment accepts an :class:`ExperimentConfig`; :data:`PAPER` uses the
paper's exact hyperparameters (M=5000 brute-force candidates, N=1000
Monte-Carlo samples, n=1000 discretization points, eps=1e-7) and
:data:`QUICK` is a scaled-down preset for tests and smoke benchmarks that
preserves every qualitative conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "PAPER", "QUICK"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Hyperparameters of the Section 5 evaluation."""

    m_grid: int = 5000  # brute-force t1 candidates (M)
    n_samples: int = 1000  # Monte-Carlo samples (N)
    n_discrete: int = 1000  # discretization points (n)
    epsilon: float = 1e-7  # truncation quantile (eps)
    seed: int = 20190520  # base seed (IPDPS 2019 conference date)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Proportionally shrink the expensive knobs (for quick runs)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            m_grid=max(10, int(self.m_grid * factor)),
            n_samples=max(50, int(self.n_samples * factor)),
            n_discrete=max(10, int(self.n_discrete * factor)),
        )


#: The paper's Section 5 settings.
PAPER = ExperimentConfig()

#: Fast preset: ~25x cheaper, same qualitative results.
QUICK = ExperimentConfig(m_grid=300, n_samples=500, n_discrete=200)
