"""Shared configuration and observability plumbing for the experiment harness.

Every experiment accepts an :class:`ExperimentConfig`; :data:`PAPER` uses the
paper's exact hyperparameters (M=5000 brute-force candidates, N=1000
Monte-Carlo samples, n=1000 discretization points, eps=1e-7) and
:data:`QUICK` is a scaled-down preset for tests and smoke benchmarks that
preserves every qualitative conclusion.

:func:`observed_experiment` is how the runner instruments each artifact: it
enables metrics/tracing for the duration of the run with a clean registry,
and the harness then persists the registry as ``<name>.metrics.json``
alongside the artifact text (:func:`write_experiment_metrics`), so every
regeneration leaves a machine-readable record of how much work it did
(recurrence iterations, MC samples, sequence extensions, kernel timings).
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, replace
from typing import Iterator

from repro import observability as obs

__all__ = [
    "ExperimentConfig",
    "PAPER",
    "QUICK",
    "observed_experiment",
    "write_experiment_metrics",
    "metrics_summary_line",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Hyperparameters of the Section 5 evaluation."""

    m_grid: int = 5000  # brute-force t1 candidates (M)
    n_samples: int = 1000  # Monte-Carlo samples (N)
    n_discrete: int = 1000  # discretization points (n)
    epsilon: float = 1e-7  # truncation quantile (eps)
    seed: int = 20190520  # base seed (IPDPS 2019 conference date)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Proportionally shrink the expensive knobs (for quick runs)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            m_grid=max(10, int(self.m_grid * factor)),
            n_samples=max(50, int(self.n_samples * factor)),
            n_discrete=max(10, int(self.n_discrete * factor)),
        )


#: The paper's Section 5 settings.
PAPER = ExperimentConfig()

#: Fast preset: ~25x cheaper, same qualitative results.
QUICK = ExperimentConfig(m_grid=300, n_samples=500, n_discrete=200)


# ----------------------------------------------------------------------
# Observability plumbing (used by the repro-experiments runner)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def observed_experiment(name: str) -> Iterator[obs.Registry]:
    """Run one experiment with instrumentation on and a clean registry.

    Yields the metrics registry so the caller can summarize or persist it;
    restores the previous enabled/disabled state on exit.
    """
    was_enabled = obs.is_enabled()
    obs.enable()
    registry = obs.get_registry()
    registry.reset()
    try:
        with obs.span("experiment", experiment=name):
            yield registry
    finally:
        if not was_enabled:
            obs.disable()


def write_experiment_metrics(name: str, directory: str) -> str:
    """Persist the current registry as ``<directory>/<name>.metrics.json``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.metrics.json")
    payload = {"experiment": name, "metrics": obs.get_registry().to_dict()}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def metrics_summary_line(name: str) -> str:
    """One-line per-experiment work summary for the runner's stdout."""
    registry = obs.get_registry()

    def count(key: str) -> int:
        return int(registry.counter(key).value)

    return (
        f"[{name} metrics: {count('recurrence.iterations')} recurrence iters, "
        f"{count('mc.samples')} MC samples, "
        f"{count('sequence.extensions')} extensions, "
        f"{count('brute_force.candidates')} BF candidates]"
    )
