"""Experiment harness: one module per paper table/figure plus ablations and
extension experiments.  See DESIGN.md for the per-experiment index and the
``repro-experiments`` CLI (:mod:`repro.experiments.runner`)."""

from repro.experiments.common import PAPER, QUICK, ExperimentConfig
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4

__all__ = [
    "ExperimentConfig",
    "PAPER",
    "QUICK",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
]
