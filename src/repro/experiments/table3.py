"""Table 3 — the BRUTE-FORCE ``t_1`` versus quantile-guessed ``t_1``.

For each distribution, report the best first reservation ``t_1^bf`` found by
the brute-force scan (with its normalized cost), and the cost obtained by
instead *guessing* ``t_1`` at the distribution's 25/50/75/99% quantiles —
many of which produce invalid (non-increasing) Eq. (11) sequences, rendered
as "-" exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cost import CostModel
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.strategies.brute_force import BruteForce
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_float, format_table

__all__ = ["Table3Row", "Table3Result", "run_table3", "format_table3", "QUANTILES"]

#: Quantile guesses the paper compares against.
QUANTILES = (0.25, 0.50, 0.75, 0.99)


@dataclass(frozen=True)
class Table3Row:
    distribution: str
    t1_bf: float
    cost_bf: float  # normalized
    quantile_t1: Dict[float, float]
    quantile_cost: Dict[float, Optional[float]]  # None = invalid sequence


@dataclass(frozen=True)
class Table3Result:
    rows: List[Table3Row]
    config: ExperimentConfig


def run_table3(config: ExperimentConfig = PAPER) -> Table3Result:
    """Regenerate Table 3."""
    cost_model = CostModel.reservation_only()
    distributions = paper_distributions()
    rngs = spawn_generators(config.seed, len(distributions))

    rows: List[Table3Row] = []
    for (dist_name, dist), rng in zip(distributions.items(), rngs):
        omniscient = cost_model.omniscient_expected_cost(dist)
        bf = BruteForce(
            m_grid=config.m_grid, n_samples=config.n_samples, seed=rng
        )
        # One sample set shared by the scan and the quantile guesses, so the
        # comparison is apples-to-apples (common random numbers).
        samples = dist.rvs(config.n_samples, seed=rng)
        scan = bf.scan(dist, cost_model, samples=samples)
        q_t1: Dict[float, float] = {}
        q_cost: Dict[float, Optional[float]] = {}
        for q in QUANTILES:
            t1 = float(dist.quantile(q))
            q_t1[q] = t1
            cost = bf.candidate_cost(t1, dist, cost_model, samples)
            q_cost[q] = None if cost is None else cost / omniscient
        rows.append(
            Table3Row(
                distribution=dist_name,
                t1_bf=scan.best_t1,
                cost_bf=scan.best_cost / omniscient,
                quantile_t1=q_t1,
                quantile_cost=q_cost,
            )
        )
    return Table3Result(rows=rows, config=config)


def format_table3(result: Table3Result) -> str:
    headers = ["Distribution", "t1_bf (cost)"] + [f"Q({q:g})" for q in QUANTILES]
    rows: List[List[str]] = []
    for row in result.rows:
        cells = [row.distribution, f"{row.t1_bf:.2f} ({row.cost_bf:.2f})"]
        for q in QUANTILES:
            cost = row.quantile_cost[q]
            cells.append(f"{row.quantile_t1[q]:.2f} ({format_float(cost)})")
        rows.append(cells)
    return format_table(
        headers,
        rows,
        title="Table 3: best t1 from Brute-Force vs quantile guesses "
        "(normalized cost in brackets; '-' = invalid sequence)",
    )
