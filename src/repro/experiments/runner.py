"""Command-line entry point regenerating every paper table and figure.

Usage (installed as ``repro-experiments``)::

    repro-experiments all --quick          # everything, scaled-down
    repro-experiments table2               # one artifact, paper settings
    repro-experiments fig3 --csv lognormal # raw series for plotting

``--quick`` uses the QUICK preset (~25x cheaper, same shapes); the default
is the paper's exact hyperparameters (a full run takes a few minutes).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments.ablations import (
    format_ablation_bruteforce_grid,
    format_ablation_evaluator,
    format_ablation_tail,
    format_ablation_truncation,
    run_ablation_bruteforce_grid,
    run_ablation_evaluator,
    run_ablation_tail,
    run_ablation_truncation,
)
from repro.experiments.common import (
    PAPER,
    QUICK,
    ExperimentConfig,
    metrics_summary_line,
    observed_experiment,
    write_experiment_metrics,
)
from repro.experiments.extensions_exp import (
    format_checkpoint_experiment,
    format_convex_experiment,
    run_checkpoint_experiment,
    run_convex_experiment,
)
from repro.experiments.deadline_exp import (
    format_deadline_experiment,
    run_deadline_experiment,
)
from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.invivo_exp import (
    format_invivo_experiment,
    run_invivo_experiment,
)
from repro.experiments.misspecification_exp import (
    format_misspecification_experiment,
    run_misspecification_experiment,
)
from repro.experiments.multiresource_exp import (
    format_multiresource_experiment,
    run_multiresource_experiment,
)
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.fig2sim import format_fig2sim, run_fig2sim
from repro.experiments.fig3 import fig3_csv, format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.pricing_exp import (
    format_pricing_experiment,
    run_pricing_experiment,
)
from repro.experiments.spot_exp import format_spot_experiment, run_spot_experiment
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.variability_exp import (
    format_variability_experiment,
    run_variability_experiment,
)
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4

__all__ = ["main", "EXPERIMENTS"]


def _table2(cfg: ExperimentConfig) -> str:
    return format_table2(run_table2(cfg))


def _table3(cfg: ExperimentConfig) -> str:
    return format_table3(run_table3(cfg))


def _table4(cfg: ExperimentConfig) -> str:
    return format_table4(run_table4(cfg))


def _fig1(cfg: ExperimentConfig) -> str:
    return format_fig1(run_fig1(cfg))


def _fig2(cfg: ExperimentConfig) -> str:
    return format_fig2(run_fig2(cfg))


def _fig2sim(cfg: ExperimentConfig) -> str:
    n_jobs = 1500 if cfg.m_grid < 5000 else 3000
    return format_fig2sim(run_fig2sim(cfg, n_jobs=n_jobs))


def _fig3(cfg: ExperimentConfig) -> str:
    return format_fig3(run_fig3(cfg))


def _fig4(cfg: ExperimentConfig) -> str:
    return format_fig4(run_fig4(cfg))


def _ablation_evaluator(cfg: ExperimentConfig) -> str:
    return format_ablation_evaluator(run_ablation_evaluator(cfg))


def _ablation_bruteforce(cfg: ExperimentConfig) -> str:
    sizes = (10, 50, 100, 500) if cfg.m_grid < 5000 else None
    kwargs = {"grid_sizes": sizes} if sizes else {}
    return format_ablation_bruteforce_grid(
        run_ablation_bruteforce_grid(config=cfg, **kwargs)
    )


def _ablation_truncation(cfg: ExperimentConfig) -> str:
    return format_ablation_truncation(run_ablation_truncation(config=cfg))


def _variability(cfg: ExperimentConfig) -> str:
    n_seeds = 5 if cfg.m_grid < 5000 else 10
    return format_variability_experiment(
        run_variability_experiment(n_seeds=n_seeds, config=cfg)
    )


def _ablation_tail(cfg: ExperimentConfig) -> str:
    return format_ablation_tail(run_ablation_tail(config=cfg))


def _ext_convex(cfg: ExperimentConfig) -> str:
    return format_convex_experiment(run_convex_experiment(config=cfg))


def _ext_checkpoint(cfg: ExperimentConfig) -> str:
    return format_checkpoint_experiment(run_checkpoint_experiment(config=cfg))


def _ext_multiresource(cfg: ExperimentConfig) -> str:
    return format_multiresource_experiment(run_multiresource_experiment(config=cfg))


def _ext_invivo(cfg: ExperimentConfig) -> str:
    n_jobs = 300 if cfg.m_grid < 5000 else 600
    return format_invivo_experiment(run_invivo_experiment(cfg, n_jobs=n_jobs))


def _ext_deadline(cfg: ExperimentConfig) -> str:
    return format_deadline_experiment(run_deadline_experiment(config=cfg))


def _ext_spot(cfg: ExperimentConfig) -> str:
    from repro.extensions.spot import SpotModel

    calm = format_spot_experiment(run_spot_experiment(config=cfg))
    volatile = format_spot_experiment(
        run_spot_experiment(
            spot=SpotModel(price_per_hour=0.3, interruption_rate=5.0),
            checkpoint_overhead=0.5,
            config=cfg,
        )
    )
    return f"{calm}\n\nVolatile market (5 preemptions/h, 0.5 h checkpoints):\n{volatile}"


def _spot_market(cfg: ExperimentConfig) -> str:
    from repro.experiments.spot_market_exp import (
        format_spot_market_experiment,
        run_spot_market_experiment,
    )

    quick = cfg.m_grid < 5000
    cells = run_spot_market_experiment(
        mean_hours_sweep=(0.5, 8.0, 72.0) if quick else (0.5, 2.0, 8.0, 24.0, 72.0),
        config=cfg,
    )
    return format_spot_market_experiment(cells)


def _pricing(cfg: ExperimentConfig) -> str:
    return format_pricing_experiment(run_pricing_experiment(config=cfg))


def _ext_misspecification(cfg: ExperimentConfig) -> str:
    n_trace = 1000 if cfg.m_grid < 5000 else 3000
    return format_misspecification_experiment(
        run_misspecification_experiment(n_trace=n_trace, config=cfg)
    )


EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], str]] = {
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig1": _fig1,
    "fig2": _fig2,
    "fig2sim": _fig2sim,
    "fig3": _fig3,
    "fig4": _fig4,
    "pricing": _pricing,
    "variability": _variability,
    "ablation-evaluator": _ablation_evaluator,
    "ablation-bruteforce": _ablation_bruteforce,
    "ablation-truncation": _ablation_truncation,
    "ablation-tail": _ablation_tail,
    "ext-convex": _ext_convex,
    "ext-checkpoint": _ext_checkpoint,
    "ext-multiresource": _ext_multiresource,
    "ext-invivo": _ext_invivo,
    "ext-misspecification": _ext_misspecification,
    "ext-deadline": _ext_deadline,
    "ext-spot": _ext_spot,
    "spot-market": _spot_market,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Reservation "
        "Strategies for Stochastic Jobs' (IPDPS 2019).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true", help="use the scaled-down QUICK preset"
    )
    parser.add_argument("--seed", type=int, default=None, help="override base seed")
    parser.add_argument(
        "--csv",
        metavar="DISTRIBUTION",
        default=None,
        help="(fig3 only) dump the raw (t1, cost) series for one distribution",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="also write each artifact to DIR/<experiment>.txt",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads across experiments (with 'all'); 1 (default) "
        "preserves the exact serial behavior and per-experiment metrics",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    cfg = QUICK if args.quick else PAPER
    if args.seed is not None:
        cfg = cfg.with_seed(args.seed)

    if args.csv is not None:
        if args.experiment != "fig3":
            parser.error("--csv is only supported with the fig3 experiment")
        print(fig3_csv(run_fig3(cfg), args.csv))
        return 0

    save_dir = None
    if args.save is not None:
        import os

        save_dir = args.save
        os.makedirs(save_dir, exist_ok=True)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    if args.jobs > 1 and len(names) > 1:
        # Parallel mode: the metrics registry is process-global, so the
        # per-experiment reset/summary/snapshot would interleave across
        # workers; run with shared instrumentation and skip the per-name
        # metrics artifacts.  Outputs are printed in deterministic order.
        from repro import observability as obs
        from repro.service.pool import get_backend

        obs.enable()
        obs.get_registry().reset()

        def run_one(name: str):
            start = time.perf_counter()
            output = EXPERIMENTS[name](cfg)
            return output, time.perf_counter() - start

        with get_backend("thread", args.jobs) as backend:
            results = backend.map(run_one, names)
        for name, (output, elapsed) in zip(names, results):
            print(output)
            print(f"[{name}: {elapsed:.1f}s]\n")
            if save_dir is not None:
                import os

                path = os.path.join(save_dir, f"{name}.txt")
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(output + "\n")
        print(
            f"[parallel run, jobs={args.jobs}: per-experiment metrics "
            "summaries skipped (shared registry)]"
        )
        return 0

    for name in names:
        start = time.perf_counter()
        with observed_experiment(name):
            output = EXPERIMENTS[name](cfg)
        elapsed = time.perf_counter() - start
        print(output)
        print(f"[{name}: {elapsed:.1f}s]")
        print(metrics_summary_line(name) + "\n")
        if save_dir is not None:
            import os

            path = os.path.join(save_dir, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(output + "\n")
            # Machine-readable record of the work done, next to the artifact.
            write_experiment_metrics(name, save_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
