"""Extension experiment E6 — the cost-vs-deadline Pareto frontier.

Sweep the completion deadline ``D`` for a 99%-quantile guarantee on the
LogNormal workload and trace the frontier between *certainty* (tight
deadline, fewer/larger reservations, high expected cost) and *efficiency*
(loose deadline, the unconstrained Theorem-5 optimum).  The frontier is
monotone; its left endpoint is the quantile point itself (single-shot plan),
its right endpoint the unconstrained DP cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.cost import CostModel
from repro.discretization.schemes import equal_probability
from repro.distributions.lognormal import LogNormal
from repro.experiments.common import PAPER, ExperimentConfig
from repro.extensions.deadline import solve_deadline_dp
from repro.strategies.dynamic_programming import solve_discrete_dp
from repro.utils.tables import format_table

__all__ = ["DeadlineFrontierRow", "run_deadline_experiment",
           "format_deadline_experiment"]


@dataclass(frozen=True)
class DeadlineFrontierRow:
    deadline_over_quantile: float  # D / Q(q)
    expected_cost: float
    unconstrained_cost: float
    n_reservations: int
    worst_case: float

    @property
    def certainty_premium(self) -> float:
        """Extra expected cost paid for the guarantee."""
        return self.expected_cost / self.unconstrained_cost - 1.0


def run_deadline_experiment(
    deadline_factors: Sequence[float] = (1.0, 1.25, 1.5, 2.0, 4.0, 8.0),
    completion_quantile: float = 0.99,
    config: ExperimentConfig = PAPER,
) -> List[DeadlineFrontierRow]:
    """Trace the frontier for LogNormal(3, 0.5), RESERVATIONONLY."""
    dist = LogNormal(3.0, 0.5)
    cost_model = CostModel.reservation_only()
    n = min(config.n_discrete, 300)
    discrete = equal_probability(dist, n, 1e-6)
    unconstrained = solve_discrete_dp(discrete, cost_model).expected_cost

    # The guarantee anchors at the discrete support's quantile point.
    import numpy as np

    f = discrete.masses / discrete.masses.sum()
    q_idx = min(int(np.searchsorted(np.cumsum(f), completion_quantile)), n - 1)
    q_point = float(discrete.values[q_idx])

    rows: List[DeadlineFrontierRow] = []
    for factor in deadline_factors:
        plan = solve_deadline_dp(
            discrete,
            cost_model,
            deadline=q_point * factor,
            completion_quantile=completion_quantile,
            budget_buckets=min(400, 4 * n),
        )
        rows.append(
            DeadlineFrontierRow(
                deadline_over_quantile=factor,
                expected_cost=plan.expected_cost,
                unconstrained_cost=unconstrained,
                n_reservations=len(plan.reservations),
                worst_case=plan.worst_case_completion,
            )
        )
    return rows


def format_deadline_experiment(rows: List[DeadlineFrontierRow]) -> str:
    return format_table(
        ["D / Q(0.99)", "E(S)", "unconstrained", "certainty premium",
         "reservations", "worst-case (h)"],
        [
            [
                f"{r.deadline_over_quantile:g}",
                f"{r.expected_cost:.3f}",
                f"{r.unconstrained_cost:.3f}",
                f"{100 * r.certainty_premium:+.1f}%",
                str(r.n_reservations),
                f"{r.worst_case:.1f}",
            ]
            for r in rows
        ],
        title="Extension E6: cost-vs-deadline Pareto frontier "
        "(LogNormal(3, 0.5), 99% completion guarantee)",
    )
