"""Figure 1 — neuroscience trace histograms with LogNormal fits.

The paper plots >5000 runs of fMRIQA and VBMQA against fitted LogNormal
curves.  We regenerate both panels from synthetic traces (the proprietary
Vanderbilt data is substituted by sampling the published fits — see
DESIGN.md) and verify the fit recovers the generating parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.distributions.fitting import LogNormalFit, ks_distance
from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.traces import _KNOWN_APPS, ApplicationTrace, generate_trace
from repro.utils.tables import format_table

__all__ = ["Fig1Panel", "Fig1Result", "run_fig1", "format_fig1"]


@dataclass(frozen=True)
class Fig1Panel:
    """One application panel: trace, histogram, fit and goodness-of-fit."""

    application: str
    trace: ApplicationTrace
    fit: LogNormalFit
    hist_density: np.ndarray
    hist_edges: np.ndarray
    ks: float
    generating_mu: float
    generating_sigma: float


@dataclass(frozen=True)
class Fig1Result:
    panels: Dict[str, Fig1Panel]
    config: ExperimentConfig


def run_fig1(
    config: ExperimentConfig = PAPER, n_runs: int = 5000, bins: int = 50
) -> Fig1Result:
    """Regenerate both Fig. 1 panels."""
    panels: Dict[str, Fig1Panel] = {}
    for i, (app, params) in enumerate(sorted(_KNOWN_APPS.items())):
        trace = generate_trace(app, n_runs=n_runs, seed=config.seed + i)
        fit = trace.fit()
        density, edges = trace.histogram(bins=bins)
        panels[app] = Fig1Panel(
            application=app,
            trace=trace,
            fit=fit,
            hist_density=density,
            hist_edges=edges,
            ks=ks_distance(trace.runtimes_seconds, fit.distribution()),
            generating_mu=params["mu"],
            generating_sigma=params["sigma"],
        )
    return Fig1Result(panels=panels, config=config)


def format_fig1(result: Fig1Result) -> str:
    headers = [
        "Application",
        "runs",
        "fit mu",
        "fit sigma",
        "true mu",
        "true sigma",
        "mean (s)",
        "std (s)",
        "KS",
    ]
    rows: List[List[str]] = []
    for app, p in result.panels.items():
        rows.append(
            [
                app,
                str(p.trace.n_runs),
                f"{p.fit.mu:.4f}",
                f"{p.fit.sigma:.4f}",
                f"{p.generating_mu:.4f}",
                f"{p.generating_sigma:.4f}",
                f"{p.fit.mean:.2f}",
                f"{p.fit.std:.2f}",
                f"{p.ks:.4f}",
            ]
        )
    return format_table(
        headers,
        rows,
        title="Figure 1: synthetic neuroscience traces + LogNormal fits "
        "(paper: VBMQA mean ~1253.37 s, std ~258.26 s)",
    )
