"""Spot-market experiment — volatility x interruption-rate x overhead sweep.

For each market cell (OU price volatility, base interruption rate,
checkpoint overhead) and each workload scale, compare per-job expected
monetary cost of

* **reserved** — the paper's DP sequence at the on-demand price (1.0/h);
* **spot restart** — certainty-equivalent spot, restart-from-scratch;
* **spot + ckpt** — spot with Young/Daly-seeded optimal checkpoints;
* **mixed** — the :class:`~repro.strategies.SpotThenReserve` cap sweep
  (spot through the first ``k tau`` hours of work, reserved tail on the
  leftover law).

In volatile cells the checkpointed variant is additionally priced by the
interruption-aware Monte-Carlo evaluator under the *realized* OU price path
with a price-coupled hazard (``rate(p) = base_rate * p / 0.3``) — the
number the certainty-equivalent planner cannot see.

Expected headline (the acceptance check): every cell shows the
short-jobs-on-spot / long-jobs-on-reservations crossover against
restart-from-scratch, and checkpointing shifts that frontier to longer
jobs — beyond the sweep entirely in calm/cheap-checkpoint cells, still
finite when interruptions are frequent *and* checkpoints are expensive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.cost import CostModel
from repro.distributions.lognormal import lognormal_from_moments
from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.spot import (
    LinearPriceHazard,
    OUPriceProcess,
    SpotScenario,
    expected_spot_busy_time,
    spot_monte_carlo_cost,
)
from repro.simulation.evaluator import evaluate_strategy
from repro.strategies.discretized_dp import EqualProbabilityDP
from repro.strategies.spot_tier import SpotThenReserve, _spot_interval
from repro.utils.rng import spawn_seed_sequences
from repro.utils.tables import format_table

__all__ = [
    "SpotMarketRow",
    "SpotMarketCell",
    "run_spot_market_experiment",
    "format_spot_market_experiment",
]

#: Stationary mean spot price (fraction of the on-demand 1.0/h).
SPOT_MEAN_PRICE = 0.3


@dataclass(frozen=True)
class SpotMarketRow:
    mean_hours: float
    reserved_cost: float
    spot_restart_cost: float
    spot_checkpointed_cost: float
    mixed_cost: float
    mixed_cap: float  # spot work cap of the best mixed plan (0/inf = pure)
    mc_checkpointed_cost: Optional[float]  # realized-price MC, volatile cells
    mc_std_error: Optional[float]

    @property
    def winner(self) -> str:
        best = min(
            self.reserved_cost,
            self.spot_restart_cost,
            self.spot_checkpointed_cost,
            self.mixed_cost,
        )
        # Ties prefer the never-interrupted tier (a degenerate mixed plan
        # has exactly the reserved cost and *is* the reserved plan).
        if best == self.reserved_cost:
            return "reserved"
        if best == self.mixed_cost and 0.0 < self.mixed_cap < math.inf:
            return "mixed"
        if best == self.spot_restart_cost:
            return "spot"
        return "spot+ckpt"


@dataclass(frozen=True)
class SpotMarketCell:
    volatility: float
    base_rate: float
    checkpoint_overhead: float
    checkpoint_interval: float
    rows: Tuple[SpotMarketRow, ...]

    def _crossover(self, spot_cost) -> Optional[float]:
        for row in self.rows:
            if row.reserved_cost < spot_cost(row):
                return row.mean_hours
        return None

    @property
    def crossover_restart(self) -> Optional[float]:
        """Smallest swept scale where reservations beat restart spot."""
        return self._crossover(lambda r: r.spot_restart_cost)

    @property
    def crossover_spot(self) -> Optional[float]:
        """Smallest swept scale where reservations beat the best pure spot
        mode — checkpointing can only push this right of
        :attr:`crossover_restart`."""
        return self._crossover(
            lambda r: min(r.spot_restart_cost, r.spot_checkpointed_cost)
        )


def run_spot_market_experiment(
    volatilities: Sequence[float] = (0.0, 0.15),
    base_rates: Sequence[float] = (0.1, 1.0),
    overheads: Sequence[float] = (0.05, 1.0),
    mean_hours_sweep: Sequence[float] = (0.5, 2.0, 8.0, 24.0, 72.0),
    config: ExperimentConfig = PAPER,
    n_paths: Optional[int] = None,
) -> List[SpotMarketCell]:
    """Sweep the market grid over workload scales (40% CV LogNormal)."""
    cost_model = CostModel.reservation_only()
    n_discrete = min(config.n_discrete, 200)
    strategy = EqualProbabilityDP(n=n_discrete)
    mixed = SpotThenReserve(EqualProbabilityDP(n=n_discrete), max_segments=6)
    if n_paths is None:
        n_paths = max(200, config.n_samples // 2)

    cells: List[SpotMarketCell] = []
    grid = [
        (vol, rate, overhead)
        for vol in volatilities
        for rate in base_rates
        for overhead in overheads
    ]
    seeds = spawn_seed_sequences(config.seed, len(grid))
    for (vol, rate, overhead), cell_seed in zip(grid, seeds):
        price = OUPriceProcess(
            mean=SPOT_MEAN_PRICE, reversion=1.0, volatility=vol
        )
        # Hazard scales with price so volatility couples into interruptions;
        # at the stationary mean it is exactly base_rate.
        hazard = LinearPriceHazard(
            base_rate=rate,
            sensitivity=rate / SPOT_MEAN_PRICE,
            reference_price=SPOT_MEAN_PRICE,
        )
        rows: List[SpotMarketRow] = []
        tau = 0.0
        row_seeds = spawn_seed_sequences(cell_seed, len(mean_hours_sweep))
        for mean, row_seed in zip(mean_hours_sweep, row_seeds):
            dist = lognormal_from_moments(mean, 0.4 * mean)
            scenario = SpotScenario(
                price=price,
                hazard=hazard,
                checkpoint_overhead=overhead,
                step=max(mean / 48.0, 0.01),
            )
            tau = _spot_interval(scenario, rate, dist)
            reserved = evaluate_strategy(
                strategy, dist, cost_model, method="series"
            ).expected_cost
            restart = SPOT_MEAN_PRICE * expected_spot_busy_time(dist, rate)
            ckpt = SPOT_MEAN_PRICE * expected_spot_busy_time(
                dist,
                rate,
                checkpoint_interval=tau,
                checkpoint_overhead=overhead,
            )
            mixed_plan = mixed.plan(dist, cost_model, scenario)
            mc_cost = mc_se = None
            if vol > 0.0:
                mc = spot_monte_carlo_cost(
                    dist,
                    scenario,
                    recovery="checkpoint",
                    checkpoint_interval=tau,
                    n_paths=n_paths,
                    seed=row_seed,
                )
                mc_cost, mc_se = mc.mean_cost, mc.std_error
            rows.append(
                SpotMarketRow(
                    mean_hours=mean,
                    reserved_cost=float(reserved),
                    spot_restart_cost=restart,
                    spot_checkpointed_cost=ckpt,
                    mixed_cost=mixed_plan.expected_cost,
                    mixed_cap=mixed_plan.spot_work_cap,
                    mc_checkpointed_cost=mc_cost,
                    mc_std_error=mc_se,
                )
            )
        cells.append(
            SpotMarketCell(
                volatility=vol,
                base_rate=rate,
                checkpoint_overhead=overhead,
                checkpoint_interval=tau,
                rows=tuple(rows),
            )
        )
    return cells


def _fmt_cost(value: float) -> str:
    if value == math.inf:
        return "inf"
    if value >= 1e6:
        return f"{value:.2e}"
    return f"{value:.2f}"


def _fmt_crossover(value: Optional[float]) -> str:
    return ">sweep" if value is None else f"{value:g}h"


def format_spot_market_experiment(cells: List[SpotMarketCell]) -> str:
    blocks = []
    for cell in cells:
        rows = [
            [
                f"{r.mean_hours:g}",
                _fmt_cost(r.reserved_cost),
                _fmt_cost(r.spot_restart_cost),
                _fmt_cost(r.spot_checkpointed_cost),
                _fmt_cost(r.mixed_cost),
                (
                    "-"
                    if r.mc_checkpointed_cost is None
                    else f"{r.mc_checkpointed_cost:.2f}±{r.mc_std_error:.2f}"
                ),
                r.winner,
            ]
            for r in cell.rows
        ]
        table = format_table(
            [
                "mean job (h)",
                "reserved",
                "spot restart",
                "spot + ckpt",
                "mixed",
                "MC realized",
                "winner",
            ],
            rows,
            title=(
                f"Spot market: OU volatility {cell.volatility:g}, base rate "
                f"{cell.base_rate:g}/h, ckpt overhead "
                f"{cell.checkpoint_overhead:g}h "
                f"(tau*={cell.checkpoint_interval:.2f}h)"
            ),
        )
        blocks.append(
            f"{table}\n(crossover vs restart: "
            f"{_fmt_crossover(cell.crossover_restart)}; vs best spot: "
            f"{_fmt_crossover(cell.crossover_spot)})"
        )
    return "\n\n".join(blocks)
