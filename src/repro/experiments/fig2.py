"""Figure 2 — average queue wait time vs requested runtime, affine fits.

The paper clusters Intrepid jobs (204- and 409-processor groups) into 20
bins by requested runtime, plots per-bin average waits, and fits an affine
function; the 409-processor fit (alpha=0.95, gamma=1.05 h) parameterizes
NEUROHPC.  We regenerate the pipeline from synthetic logs (see DESIGN.md)
and check that the recovered slope/intercept are close to the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.waittime import (
    QueueLog,
    WaitTimeModel,
    fit_wait_time,
    synthesize_queue_log,
)
from repro.utils.tables import format_table

__all__ = ["Fig2Panel", "Fig2Result", "run_fig2", "format_fig2", "PROCESSOR_GROUPS"]

#: The two panels of Fig. 2 (number of processors -> ground-truth model).
#: 409 procs is the paper's fitted NEUROHPC model; the 204-proc panel shows a
#: steeper queue (larger slice of the machine waits longer per requested hour).
PROCESSOR_GROUPS: Dict[int, WaitTimeModel] = {
    204: WaitTimeModel(slope=1.4, intercept=0.8),
    409: WaitTimeModel(slope=0.95, intercept=1.05),
}


@dataclass(frozen=True)
class Fig2Panel:
    processors: int
    log: QueueLog
    group_requested: np.ndarray
    group_wait: np.ndarray
    fitted: WaitTimeModel
    truth: WaitTimeModel


@dataclass(frozen=True)
class Fig2Result:
    panels: Dict[int, Fig2Panel]
    config: ExperimentConfig


def run_fig2(
    config: ExperimentConfig = PAPER,
    n_jobs: int = 4000,
    n_groups: int = 20,
) -> Fig2Result:
    """Regenerate both Fig. 2 panels."""
    panels: Dict[int, Fig2Panel] = {}
    for i, (procs, truth) in enumerate(sorted(PROCESSOR_GROUPS.items())):
        log = synthesize_queue_log(
            model=truth, n_jobs=n_jobs, seed=config.seed + 100 + i
        )
        xs, ys = log.group_averages(n_groups)
        fitted = fit_wait_time(log, n_groups)
        panels[procs] = Fig2Panel(
            processors=procs,
            log=log,
            group_requested=xs,
            group_wait=ys,
            fitted=fitted,
            truth=truth,
        )
    return Fig2Result(panels=panels, config=config)


def format_fig2(result: Fig2Result) -> str:
    headers = [
        "Processors",
        "jobs",
        "groups",
        "fit slope",
        "fit intercept (h)",
        "true slope",
        "true intercept (h)",
    ]
    rows: List[List[str]] = []
    for procs, p in result.panels.items():
        rows.append(
            [
                str(procs),
                str(p.log.requested_hours.size),
                str(p.group_requested.size),
                f"{p.fitted.slope:.3f}",
                f"{p.fitted.intercept:.3f}",
                f"{p.truth.slope:.3f}",
                f"{p.truth.intercept:.3f}",
            ]
        )
    return format_table(
        headers,
        rows,
        title="Figure 2: affine wait-time fits (paper 409-proc fit: "
        "slope 0.95, intercept 1.05 h)",
    )
