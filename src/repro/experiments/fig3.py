"""Figure 3 — normalized cost as a function of the first reservation ``t_1``.

For each distribution, sweep ``t_1`` across the brute-force search interval,
complete each candidate with the Eq. (11) recurrence, and record the
Monte-Carlo normalized cost — or mark the candidate infeasible when the
recurrence stops increasing (the gaps visible in the paper's plots, e.g.
Fig. 3a's gap between 0.25 and 0.75 for the exponential).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cost import CostModel
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.simulation.results import SweepPoint
from repro.strategies.brute_force import BruteForce
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_csv, format_table

__all__ = ["Fig3Series", "Fig3Result", "run_fig3", "format_fig3", "fig3_csv"]


@dataclass(frozen=True)
class Fig3Series:
    distribution: str
    points: List[SweepPoint]  # x = t1, normalized_cost = None if infeasible
    best_t1: float
    best_cost: float  # normalized

    @property
    def feasible_fraction(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.feasible for p in self.points) / len(self.points)


@dataclass(frozen=True)
class Fig3Result:
    series: Dict[str, Fig3Series]
    config: ExperimentConfig


def run_fig3(
    config: ExperimentConfig = PAPER, sweep_points: int | None = None
) -> Fig3Result:
    """Regenerate all nine Fig. 3 panels.

    ``sweep_points`` defaults to ``config.m_grid`` (the plot *is* the
    brute-force scan); pass a smaller value for a coarser curve.
    """
    cost_model = CostModel.reservation_only()
    distributions = paper_distributions()
    rngs = spawn_generators(config.seed, len(distributions))
    m = sweep_points or config.m_grid

    series: Dict[str, Fig3Series] = {}
    for (dist_name, dist), rng in zip(distributions.items(), rngs):
        omniscient = cost_model.omniscient_expected_cost(dist)
        bf = BruteForce(m_grid=m, n_samples=config.n_samples, seed=rng)
        scan = bf.scan(dist, cost_model)
        points = [
            SweepPoint(
                x=p.t1,
                normalized_cost=(
                    None if p.expected_cost is None else p.expected_cost / omniscient
                ),
                label=dist_name,
            )
            for p in scan.points
        ]
        series[dist_name] = Fig3Series(
            distribution=dist_name,
            points=points,
            best_t1=scan.best_t1,
            best_cost=scan.best_cost / omniscient,
        )
    return Fig3Result(series=series, config=config)


def format_fig3(result: Fig3Result) -> str:
    """Summary table with a sparkline of each cost landscape (gaps = the
    infeasible t1 bands the paper's plots show)."""
    from repro.utils.ascii_plot import sparkline

    headers = [
        "Distribution",
        "feasible %",
        "best t1",
        "best cost",
        "cost over t1 (low->high)",
    ]
    rows: List[List[str]] = []
    for name, s in result.series.items():
        rows.append(
            [
                name,
                f"{100.0 * s.feasible_fraction:.1f}",
                f"{s.best_t1:.4g}",
                f"{s.best_cost:.3f}",
                sparkline([p.normalized_cost for p in s.points], width=48),
            ]
        )
    return format_table(
        headers,
        rows,
        title="Figure 3 (summary): cost landscape over t1 per distribution "
        f"({len(next(iter(result.series.values())).points)} candidates each; "
        "'·' = infeasible t1)",
    )


def fig3_csv(result: Fig3Result, distribution: str) -> str:
    """Full (t1, normalized_cost) series for one panel, CSV (empty cost =
    infeasible candidate — the plot gaps)."""
    s = result.series[distribution]
    rows = [
        (f"{p.x:.6g}", "" if p.normalized_cost is None else f"{p.normalized_cost:.6g}")
        for p in s.points
    ]
    return format_csv(["t1", "normalized_cost"], rows)
