"""Extension experiments E1 (convex costs) and E2 (checkpointing).

E1 — Appendix C with a quadratic reservation cost ``G(x) = a2 x^2 + x``:
the optimal sequences become shorter-stepped (superlinear pricing punishes
over-reservation harder), and the affine instance of the convex machinery
must agree exactly with the Eq. (11) pipeline.

E2 — Section 7's future-work direction: end-of-reservation checkpointing.
For each distribution, the optimal checkpointed plan (DP over a discretized
support) versus the optimal non-checkpointed DP sequence, across checkpoint
overheads.  With zero overhead and RESERVATIONONLY pricing, checkpointing
drives the normalized cost toward 1 (work is never redone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.convex import (
    QuadraticReservationCost,
    brute_force_convex_t1,
    expected_cost_convex,
)
from repro.core.cost import CostModel
from repro.discretization.schemes import equal_probability
from repro.distributions.registry import paper_distributions
from repro.experiments.common import PAPER, ExperimentConfig
from repro.extensions.checkpoint import (
    expected_checkpoint_cost_series,
    solve_checkpoint_dp,
)
from repro.simulation.evaluator import evaluate_strategy
from repro.strategies.discretized_dp import EqualProbabilityDP
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = [
    "ConvexRow",
    "run_convex_experiment",
    "format_convex_experiment",
    "CheckpointRow",
    "run_checkpoint_experiment",
    "format_checkpoint_experiment",
]


# ----------------------------------------------------------------------
# E1: convex (quadratic) reservation cost
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConvexRow:
    distribution: str
    a2: float
    best_t1: float
    expected_cost: float
    omniscient_cost: float  # E[G(X)] analogue: G(t) paid on exact reservation
    sequence_len: int

    @property
    def normalized(self) -> float:
        return self.expected_cost / self.omniscient_cost


def run_convex_experiment(
    a2_values: Tuple[float, ...] = (0.1, 1.0),
    distribution_names: Tuple[str, ...] = ("exponential", "lognormal", "uniform"),
    config: ExperimentConfig = PAPER,
    n_grid: int = 400,
) -> List[ConvexRow]:
    """Quadratic cost ``G(x) = a2 x^2 + x`` (beta = 0) per distribution."""
    from scipy import integrate

    dists = paper_distributions()
    rows: List[ConvexRow] = []
    for name in distribution_names:
        dist = dists[name]
        for a2 in a2_values:
            cost = QuadraticReservationCost(a2=a2, a1=1.0)
            t1, expected, seq = brute_force_convex_t1(
                dist, cost, beta=0.0, n_grid=n_grid
            )
            lo, hi_ = dist.support()
            hi = hi_ if hi_ != float("inf") else float(dist.quantile(1 - 1e-10))
            omniscient, _ = integrate.quad(
                lambda t: cost.g(t) * dist.pdf(t), lo, hi, limit=200
            )
            rows.append(
                ConvexRow(
                    distribution=name,
                    a2=a2,
                    best_t1=t1,
                    expected_cost=expected,
                    omniscient_cost=omniscient,
                    sequence_len=len(seq),
                )
            )
    return rows


def format_convex_experiment(rows: List[ConvexRow]) -> str:
    return format_table(
        ["Distribution", "a2", "best t1", "E(S)", "E^o", "normalized", "len"],
        [
            [
                r.distribution,
                f"{r.a2:g}",
                f"{r.best_t1:.4g}",
                f"{r.expected_cost:.4f}",
                f"{r.omniscient_cost:.4f}",
                f"{r.normalized:.3f}",
                str(r.sequence_len),
            ]
            for r in rows
        ],
        title="Extension E1: quadratic reservation cost G(x) = a2 x^2 + x "
        "(Appendix C machinery)",
    )


# ----------------------------------------------------------------------
# E2: checkpointing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointRow:
    distribution: str
    overhead: float
    checkpoint_cost: float  # normalized by omniscient
    no_checkpoint_cost: float  # optimal DP without checkpoints, normalized

    @property
    def improvement(self) -> float:
        """Fractional cost reduction from checkpointing (can be negative
        when the overhead outweighs the saved re-execution)."""
        return 1.0 - self.checkpoint_cost / self.no_checkpoint_cost


def run_checkpoint_experiment(
    overheads: Tuple[float, ...] = (0.0, 0.05, 0.25, 1.0),
    distribution_names: Tuple[str, ...] = ("exponential", "lognormal", "weibull"),
    config: ExperimentConfig = PAPER,
) -> List[CheckpointRow]:
    """Optimal checkpointed vs non-checkpointed cost, RESERVATIONONLY.

    Overheads are in units of the distribution mean (scaled per law) so the
    comparison is meaningful across distributions.
    """
    cost_model = CostModel.reservation_only()
    dists = paper_distributions()
    rngs = spawn_generators(config.seed, len(distribution_names))
    rows: List[CheckpointRow] = []
    for name, rng in zip(distribution_names, rngs):
        dist = dists[name]
        omniscient = cost_model.omniscient_expected_cost(dist)
        discrete = equal_probability(dist, config.n_discrete, config.epsilon)
        no_ckpt = evaluate_strategy(
            EqualProbabilityDP(n=config.n_discrete, epsilon=config.epsilon),
            dist,
            cost_model,
            method="monte_carlo",
            n_samples=config.n_samples,
            seed=rng,
        ).normalized_cost
        for overhead_rel in overheads:
            overhead = overhead_rel * dist.mean()
            plan = solve_checkpoint_dp(discrete, cost_model, overhead)
            ckpt_cost = expected_checkpoint_cost_series(plan, dist, cost_model)
            rows.append(
                CheckpointRow(
                    distribution=name,
                    overhead=overhead_rel,
                    checkpoint_cost=ckpt_cost / omniscient,
                    no_checkpoint_cost=no_ckpt,
                )
            )
    return rows


def format_checkpoint_experiment(rows: List[CheckpointRow]) -> str:
    return format_table(
        ["Distribution", "C / mean", "ckpt cost", "no-ckpt cost", "improvement"],
        [
            [
                r.distribution,
                f"{r.overhead:g}",
                f"{r.checkpoint_cost:.3f}",
                f"{r.no_checkpoint_cost:.3f}",
                f"{100.0 * r.improvement:+.1f}%",
            ]
            for r in rows
        ],
        title="Extension E2: checkpointed reservations (normalized costs, "
        "ReservationOnly)",
    )
