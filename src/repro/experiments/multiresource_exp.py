"""Extension experiment E3 — multi-resource reservations (Section 7, first
future-work item).

For the VBMQA-like LogNormal *work* distribution, sweep the per-processor
reservation price ``alpha1`` and the speedup model's scalability, and report
the optimal plan's processor choices and normalized cost.  Expected shape:

* cheap parallelism (low ``alpha1``, good scaling) → wide requests, cost
  approaching the clairvoyant bound;
* expensive parallelism → the plan degenerates to the paper's single-
  processor setting;
* a crossover in between, whose location shifts with the serial fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.discretization.schemes import equal_probability
from repro.distributions.lognormal import LogNormal
from repro.experiments.common import PAPER, ExperimentConfig
from repro.extensions.multiresource import (
    AmdahlSpeedup,
    MultiResourceCostModel,
    monte_carlo_multi_cost,
    omniscient_multi_cost,
    solve_multiresource_dp,
)
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = ["MultiResourceRow", "run_multiresource_experiment",
           "format_multiresource_experiment"]

PROCESSOR_CHOICES = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class MultiResourceRow:
    alpha1: float
    serial_fraction: float
    max_processors: int  # widest request in the optimal plan
    plan_length: int
    expected_cost: float
    omniscient_cost: float

    @property
    def normalized(self) -> float:
        return self.expected_cost / self.omniscient_cost


def run_multiresource_experiment(
    alpha1_values: Sequence[float] = (0.01, 0.05, 0.2, 1.0),
    serial_fractions: Sequence[float] = (0.02, 0.2),
    config: ExperimentConfig = PAPER,
) -> List[MultiResourceRow]:
    """Sweep (alpha1, serial fraction) for LogNormal(0, 0.8) work."""
    work = LogNormal(0.0, 0.8)
    discrete = equal_probability(work, min(config.n_discrete, 400), 1e-6)
    rngs = spawn_generators(
        config.seed, len(alpha1_values) * len(serial_fractions)
    )
    rows: List[MultiResourceRow] = []
    i = 0
    for sf in serial_fractions:
        speedup = AmdahlSpeedup(sf)
        for a1 in alpha1_values:
            cm = MultiResourceCostModel(
                alpha0=0.2, alpha1=a1, beta=1.0, gamma=0.1
            )
            plan = solve_multiresource_dp(discrete, cm, speedup, PROCESSOR_CHOICES)
            cost = monte_carlo_multi_cost(
                plan, work, cm, n_samples=config.n_samples, seed=rngs[i]
            )
            rows.append(
                MultiResourceRow(
                    alpha1=a1,
                    serial_fraction=sf,
                    max_processors=max(r.processors for r in plan.reservations),
                    plan_length=len(plan),
                    expected_cost=cost,
                    omniscient_cost=omniscient_multi_cost(
                        work, cm, speedup, PROCESSOR_CHOICES
                    ),
                )
            )
            i += 1
    return rows


def format_multiresource_experiment(rows: List[MultiResourceRow]) -> str:
    return format_table(
        ["serial frac", "alpha1", "widest request (procs)", "plan len",
         "E(S)", "E^o", "normalized"],
        [
            [
                f"{r.serial_fraction:g}",
                f"{r.alpha1:g}",
                str(r.max_processors),
                str(r.plan_length),
                f"{r.expected_cost:.3f}",
                f"{r.omniscient_cost:.3f}",
                f"{r.normalized:.3f}",
            ]
            for r in rows
        ],
        title="Extension E3: multi-resource reservations (time x processors), "
        "LogNormal(0, 0.8) work, Amdahl speedup",
    )
