"""Reproducibility study R1 — seed variability of Table 2.

The paper's Table 2 is a single Monte-Carlo draw.  How much of each cell is
signal?  This experiment reruns the Table 2 pipeline across ``n_seeds``
independent seeds and reports the mean and standard deviation of every
(distribution, strategy) normalized cost — quantifying which paper-vs-ours
differences in EXPERIMENTS.md are within noise (most light-tailed cells:
±0.01-0.05) and which rows are intrinsically volatile (Weibull k=0.5,
Pareto: ±0.1-0.4 even at N=1000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.common import PAPER, ExperimentConfig
from repro.experiments.table2 import run_table2
from repro.strategies.registry import PAPER_STRATEGY_ORDER
from repro.utils.tables import format_table

__all__ = ["VariabilityResult", "run_variability_experiment",
           "format_variability_experiment"]


@dataclass(frozen=True)
class VariabilityResult:
    """mean/std of normalized cost per (distribution, strategy)."""

    mean: Dict[Tuple[str, str], float]
    std: Dict[Tuple[str, str], float]
    n_seeds: int

    def cell(self, distribution: str, strategy: str) -> Tuple[float, float]:
        key = (distribution, strategy)
        return self.mean[key], self.std[key]


def run_variability_experiment(
    n_seeds: int = 10,
    config: ExperimentConfig = PAPER,
) -> VariabilityResult:
    """Rerun Table 2 across seeds (scaled-down BF/DP knobs keep it fast)."""
    if n_seeds < 2:
        raise ValueError(f"need at least 2 seeds, got {n_seeds}")
    small = ExperimentConfig(
        m_grid=min(config.m_grid, 500),
        n_samples=config.n_samples,
        n_discrete=min(config.n_discrete, 300),
        epsilon=config.epsilon,
        seed=config.seed,
    )
    samples: Dict[Tuple[str, str], List[float]] = {}
    for s in range(n_seeds):
        result = run_table2(small.with_seed(small.seed + 1000 * s))
        for dist_name, row in result.records.items():
            for strat_name, record in row.items():
                samples.setdefault((dist_name, strat_name), []).append(
                    record.normalized_cost
                )
    mean = {k: float(np.mean(v)) for k, v in samples.items()}
    std = {k: float(np.std(v, ddof=1)) for k, v in samples.items()}
    return VariabilityResult(mean=mean, std=std, n_seeds=n_seeds)


def format_variability_experiment(result: VariabilityResult) -> str:
    dists = sorted({k[0] for k in result.mean})
    # Preserve the paper's row order.
    from repro.distributions.registry import PAPER_ORDER

    dists = [d for d in PAPER_ORDER if d in dists]
    rows: List[List[str]] = []
    for d in dists:
        cells = [d]
        for s in PAPER_STRATEGY_ORDER:
            m, sd = result.cell(d, s)
            cells.append(f"{m:.2f}±{sd:.2f}")
        rows.append(cells)
    return format_table(
        ["Distribution"] + list(PAPER_STRATEGY_ORDER),
        rows,
        title=f"Reproducibility R1: Table 2 across {result.n_seeds} seeds "
        "(mean±std of normalized cost)",
    )
