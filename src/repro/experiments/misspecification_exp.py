"""Extension experiment E5 — model misspecification: fit vs data.

The paper's pipeline fits a LogNormal to traces and plans against the fit.
What if the true law is *not* LogNormal?  E5 draws traces from a bimodal
LogNormal mixture (a fast path and a slow path — common in real pipelines),
builds three plans, and evaluates all of them under the TRUE law:

* **parametric** — LogNormal MLE fit of the trace (the paper's pipeline);
* **empirical** — the DP planned directly on the interpolated ECDF;
* **oracle** — the DP planned on the true mixture (upper bound on planning).

Headline: on well-specified workloads the parametric fit is fine; as the
modes separate, planning on the data (empirical) tracks the oracle while the
LogNormal fit pays an increasing misspecification premium — its single broad
mode cannot place a reservation between the two true modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.cost import CostModel
from repro.distributions.base import Distribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.fitting import fit_lognormal
from repro.distributions.lognormal import LogNormal
from repro.experiments.common import PAPER, ExperimentConfig
from repro.simulation.evaluator import evaluate_on_samples
from repro.strategies.discretized_dp import EqualProbabilityDP
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = [
    "BimodalLogNormal",
    "MisspecRow",
    "run_misspecification_experiment",
    "format_misspecification_experiment",
]


class BimodalLogNormal(Distribution):
    """Equal-spread two-mode LogNormal mixture with mode separation ``gap``:
    modes at ``exp(mu -/+ gap/2)`` with weight ``w`` on the fast mode."""

    name = "bimodal_lognormal"

    def __init__(self, mu: float = 1.0, sigma: float = 0.25,
                 gap: float = 1.0, w: float = 0.6):
        if not (0.0 < w < 1.0):
            raise ValueError(f"weight must be in (0,1), got {w}")
        if gap < 0:
            raise ValueError(f"gap must be nonnegative, got {gap}")
        self.fast = LogNormal(mu - gap / 2.0, sigma)
        self.slow = LogNormal(mu + gap / 2.0, sigma)
        self.w = float(w)
        self._check_support()

    def support(self) -> Tuple[float, float]:
        return (0.0, math.inf)

    def pdf(self, t):
        return self.w * self.fast.pdf(t) + (1 - self.w) * self.slow.pdf(t)

    def cdf(self, t):
        return self.w * self.fast.cdf(t) + (1 - self.w) * self.slow.cdf(t)

    def quantile(self, q):
        from scipy import optimize

        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantile argument must lie in [0, 1]")
        out = np.empty_like(q)
        hi0 = float(self.slow.quantile(0.999999))
        for i, qi in enumerate(q):
            if qi <= 0.0:
                out[i] = 0.0
                continue
            if qi >= 1.0:
                out[i] = math.inf
                continue
            hi = hi0
            while float(self.cdf(hi)) < qi:
                hi *= 2.0
            out[i] = optimize.brentq(lambda t: float(self.cdf(t)) - qi, 1e-12, hi)
        return out if out.size > 1 else float(out[0])

    def mean(self) -> float:
        return self.w * self.fast.mean() + (1 - self.w) * self.slow.mean()

    def second_moment(self) -> float:
        return (
            self.w * self.fast.second_moment()
            + (1 - self.w) * self.slow.second_moment()
        )


@dataclass(frozen=True)
class MisspecRow:
    gap: float
    parametric_cost: float  # normalized, evaluated under the TRUE law
    empirical_cost: float
    oracle_cost: float

    @property
    def misspecification_premium(self) -> float:
        """How much the parametric fit pays over the oracle."""
        return self.parametric_cost / self.oracle_cost - 1.0

    @property
    def empirical_premium(self) -> float:
        return self.empirical_cost / self.oracle_cost - 1.0


def run_misspecification_experiment(
    gaps: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
    n_trace: int = 3000,
    config: ExperimentConfig = PAPER,
) -> List[MisspecRow]:
    """Sweep the mode separation; evaluate plans under the true mixture."""
    cost_model = CostModel.reservation_only()
    n_discrete = min(config.n_discrete, 400)
    rngs = spawn_generators(config.seed, len(gaps))
    rows: List[MisspecRow] = []
    for gap, rng in zip(gaps, rngs):
        true = BimodalLogNormal(gap=gap)
        trace = true.rvs(n_trace, seed=rng)
        eval_samples = true.rvs(config.n_samples, seed=rng)

        parametric_model = fit_lognormal(trace).distribution()
        empirical_model = EmpiricalDistribution(trace)

        def plan_on(model):
            return EqualProbabilityDP(n=n_discrete).sequence(model, cost_model)

        def score(sequence):
            # A plan built on bounded (empirical) support can be exceeded by
            # a true-law sample beyond anything the trace ever showed; any
            # deployed plan needs that fallback, so score all plans with a
            # doubling tail (ends within one extra reservation in practice).
            from repro.core.sequence import ReservationSequence

            robust = ReservationSequence(
                sequence.values,
                extend=lambda v: float(v[-1]) * 2.0,
                name=sequence.name,
            )
            return evaluate_on_samples(
                robust, true, cost_model, eval_samples
            ).normalized_cost

        rows.append(
            MisspecRow(
                gap=gap,
                parametric_cost=score(plan_on(parametric_model)),
                empirical_cost=score(plan_on(empirical_model)),
                oracle_cost=score(plan_on(true)),
            )
        )
    return rows


def format_misspecification_experiment(rows: List[MisspecRow]) -> str:
    return format_table(
        ["mode gap", "parametric (LogNormal fit)", "empirical (ECDF)",
         "oracle (true law)", "misspec premium"],
        [
            [
                f"{r.gap:g}",
                f"{r.parametric_cost:.3f}",
                f"{r.empirical_cost:.3f}",
                f"{r.oracle_cost:.3f}",
                f"{100 * r.misspecification_premium:+.1f}%",
            ]
            for r in rows
        ],
        title="Extension E5: planning under model misspecification "
        "(bimodal truth, normalized costs under the true law)",
    )
