"""Figure 2 from first principles — the wait-time law as an *emergent*
property of a backfilling batch queue.

The paper assumes/fits an affine ``wait(R) = alpha R + gamma`` from Intrepid
logs.  Here we *derive* such a log: a synthetic workload runs through our
discrete-event cluster simulator under EASY backfilling, and the resulting
(requested runtime, wait) pairs are grouped and affine-fitted exactly like
Fig. 2.  The key qualitative claims:

* the fitted slope is positive (longer requests wait longer), because short
  requests backfill into holes and long ones cannot;
* under plain FCFS the (relative) slope is much flatter — backfilling is the
  mechanism behind the paper's cost model;
* the emergent model can then parameterize a NEUROHPC-style cost model,
  closing the loop from scheduler mechanics to reservation strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.batchsim import (
    EasyBackfillScheduler,
    FCFSScheduler,
    QueueStatistics,
    WorkloadSpec,
    generate_workload,
    simulate,
    wait_model_from_simulation,
)
from repro.experiments.common import PAPER, ExperimentConfig
from repro.platforms.waittime import WaitTimeModel
from repro.utils.tables import format_table

__all__ = ["Fig2SimPanel", "Fig2SimResult", "run_fig2sim", "format_fig2sim"]


@dataclass(frozen=True)
class Fig2SimPanel:
    scheduler: str
    stats: QueueStatistics
    fitted: WaitTimeModel

    @property
    def relative_slope(self) -> float:
        """Slope normalized by the mean wait (load-independent shape)."""
        return self.fitted.slope / self.stats.mean_wait


@dataclass(frozen=True)
class Fig2SimResult:
    panels: Dict[str, Fig2SimPanel]
    config: ExperimentConfig
    spec: WorkloadSpec


def run_fig2sim(
    config: ExperimentConfig = PAPER,
    n_jobs: int = 3000,
    total_nodes: int = 64,
    arrival_rate: float = 30.0,
) -> Fig2SimResult:
    """Simulate the same workload under EASY and FCFS and fit both."""
    spec = WorkloadSpec(
        n_jobs=n_jobs, arrival_rate=arrival_rate, max_nodes_exp=5
    )
    panels: Dict[str, Fig2SimPanel] = {}
    for scheduler in (EasyBackfillScheduler(), FCFSScheduler()):
        jobs = generate_workload(spec, seed=config.seed)
        result = simulate(jobs, total_nodes=total_nodes, scheduler=scheduler)
        panels[scheduler.name] = Fig2SimPanel(
            scheduler=scheduler.name,
            stats=QueueStatistics.from_result(result),
            fitted=wait_model_from_simulation(result),
        )
    return Fig2SimResult(panels=panels, config=config, spec=spec)


def format_fig2sim(result: Fig2SimResult) -> str:
    headers = [
        "Scheduler",
        "mean wait (h)",
        "p95 wait (h)",
        "utilization",
        "fit slope",
        "fit intercept",
        "slope / mean wait",
    ]
    rows: List[List[str]] = []
    for name, p in result.panels.items():
        rows.append(
            [
                name,
                f"{p.stats.mean_wait:.2f}",
                f"{p.stats.p95_wait:.2f}",
                f"{p.stats.utilization:.3f}",
                f"{p.fitted.slope:.3f}",
                f"{p.fitted.intercept:.3f}",
                f"{p.relative_slope:.4f}",
            ]
        )
    return format_table(
        headers,
        rows,
        title="Figure 2 (simulated): emergent affine wait-time law from the "
        "batch-queue simulator",
    )
