"""Extension experiment E7 — spot instances vs reservations.

For LogNormal workloads of increasing scale, compare per-job expected
monetary cost of

* **reserved** — the DP reservation sequence at the RI price (1.0/h);
* **spot (restart)** — spot at 0.3x the price, Poisson preemptions,
  restart-from-scratch;
* **spot (checkpointed)** — same, with Young/Daly-optimal checkpoints.

Expected crossover: short jobs ride out the preemptions and win on the
cheap spot price; long jobs blow up exponentially on restart-from-scratch
(``E[T] = (e^{lam t} - 1)/lam``) and must either checkpoint or reserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.cost import CostModel
from repro.distributions.lognormal import lognormal_from_moments
from repro.experiments.common import PAPER, ExperimentConfig
from repro.extensions.spot import SpotModel, optimal_checkpoint_interval
from repro.simulation.evaluator import evaluate_strategy
from repro.strategies.discretized_dp import EqualProbabilityDP
from repro.utils.tables import format_table

__all__ = ["SpotRow", "run_spot_experiment", "format_spot_experiment"]


@dataclass(frozen=True)
class SpotRow:
    mean_hours: float
    reserved_cost: float
    spot_restart_cost: float
    spot_checkpointed_cost: float
    checkpoint_interval: float

    @property
    def winner(self) -> str:
        best = min(
            self.reserved_cost, self.spot_restart_cost, self.spot_checkpointed_cost
        )
        if best == self.spot_restart_cost:
            return "spot"
        if best == self.spot_checkpointed_cost:
            return "spot+ckpt"
        return "reserved"


def run_spot_experiment(
    mean_hours_sweep: Sequence[float] = (0.5, 2.0, 8.0, 24.0, 72.0),
    spot: SpotModel = SpotModel(price_per_hour=0.3, interruption_rate=0.1),
    checkpoint_overhead: float = 0.05,
    config: ExperimentConfig = PAPER,
) -> List[SpotRow]:
    """Sweep the workload scale (fixed 40% coefficient of variation)."""
    cost_model = CostModel.reservation_only()
    strategy = EqualProbabilityDP(n=min(config.n_discrete, 400))
    tau = optimal_checkpoint_interval(spot.interruption_rate, checkpoint_overhead)
    rows: List[SpotRow] = []
    for mean in mean_hours_sweep:
        dist = lognormal_from_moments(mean, 0.4 * mean)
        reserved = evaluate_strategy(
            strategy, dist, cost_model, method="series"
        ).expected_cost
        rows.append(
            SpotRow(
                mean_hours=mean,
                reserved_cost=reserved,
                spot_restart_cost=spot.expected_cost_restart(dist),
                spot_checkpointed_cost=spot.expected_cost_checkpointed(
                    dist, tau, checkpoint_overhead
                ),
                checkpoint_interval=tau,
            )
        )
    return rows


def format_spot_experiment(rows: List[SpotRow]) -> str:
    table = format_table(
        ["mean job (h)", "reserved", "spot restart", "spot + ckpt", "winner"],
        [
            [
                f"{r.mean_hours:g}",
                f"{r.reserved_cost:.2f}",
                "inf" if r.spot_restart_cost == float("inf")
                else (
                    f"{r.spot_restart_cost:.2e}"
                    if r.spot_restart_cost >= 1e6
                    else f"{r.spot_restart_cost:.2f}"
                ),
                f"{r.spot_checkpointed_cost:.2f}",
                r.winner,
            ]
            for r in rows
        ],
        title="Extension E7: spot (0.3x price, 0.1 preemptions/h) vs reserved "
        "sequences, per-job expected cost",
    )
    tau = rows[0].checkpoint_interval if rows else 0.0
    return f"{table}\n(Young/Daly-optimal checkpoint interval: {tau:.2f} h)"
