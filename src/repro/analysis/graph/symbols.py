"""Per-function summaries: everything the cross-module rules need from one AST.

A :class:`FunctionSummary` condenses a function body into the facts the
RS2xx analyses consume:

* **call sites** with the syntactic shape of the callee (dotted name,
  ``self.attr``, dynamic), the identifiers mentioned in the arguments
  (for seed-taint), any project-function *references* passed as arguments
  (for callback edges), the locks lexically held, and the ``try`` guards
  lexically enclosing the site;
* **seed taint**: identifiers that carry seed provenance.  Names that look
  seed-like (``seed``, ``rng``, ``generator`` …) are taint roots; plain
  assignments and ``for``/comprehension targets propagate taint from any
  right-hand side that mentions a tainted name, to a fixpoint.  The
  propagation is name-based and intra-procedural by design — the
  inter-procedural half is the call graph's job;
* **lock acquisitions** (``with self._lock:`` / ``with MODULE_LOCK:``)
  with reentrancy info, for the lock-order analysis;
* **fault-injection sites** (``faults.fire("…")`` calls,
  ``@faults.injection_point`` decorators, ``with faults.fault_point``),
  for the exception-flow analysis;
* **guards**: every ``except`` handler in the function, classified as
  broad/narrow, swallowing, re-raising — the exception-flow analysis
  decides whether a propagating fault is *terminated* here.

Summaries never look outside their own module; resolution happens in
:mod:`repro.analysis.graph.callgraph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.finding import SourceFile
from repro.analysis.rules.base import dotted_name

__all__ = [
    "SEEDISH_EXACT",
    "SEEDISH_SUBSTRINGS",
    "is_seedish_name",
    "Guard",
    "CallSite",
    "LockAcquisition",
    "FaultSite",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "summarize_module",
]

#: Identifier names treated as seed-provenance roots wherever they appear.
SEEDISH_SUBSTRINGS = ("seed", "rng")
SEEDISH_EXACT = frozenset({"generator", "generators", "gen", "gens", "ss"})


def is_seedish_name(name: str) -> bool:
    """Heuristic: does this identifier look like it carries seed provenance?"""
    lowered = name.lower()
    return lowered in SEEDISH_EXACT or any(
        part in lowered for part in SEEDISH_SUBSTRINGS
    )


_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


@dataclass(frozen=True)
class Guard:
    """One ``except`` handler lexically enclosing a site (or in a function).

    ``types`` holds the dotted source text of each caught type (empty for a
    bare ``except:``).  ``terminal`` means a propagating exception *stops*
    here: the handler is broad, does not re-raise, and demonstrably uses
    the error (so it is not an RS105-style swallow).
    """

    lineno: int
    types: Tuple[str, ...]
    is_broad: bool
    reraises: bool
    swallows: bool

    @property
    def terminal(self) -> bool:
        return self.is_broad and not self.reraises and not self.swallows

    def catches(self, exception: str) -> bool:
        """Would this handler catch ``exception`` (a class name)?

        Matching is by trailing name component — the summary has no type
        hierarchy, so a narrow handler only counts when it names the
        exception (or one of its textual base names) outright.
        """
        if self.is_broad:
            return True
        for typ in self.types:
            if typ.rsplit(".", 1)[-1] == exception:
                return True
        return False


@dataclass(frozen=True)
class CallSite:
    """One call expression, in enough detail to resolve it later."""

    lineno: int
    col: int
    #: Dotted source text of the callee (``"np.random.default_rng"``,
    #: ``"self.cache.get"``) or ``None`` for non-name callees (lambdas,
    #: calls on call results, subscripts).
    dotted: Optional[str]
    #: For attribute calls whose receiver is not a name chain
    #: (``a().b()``, ``d[k].save()``): the trailing attribute name, which
    #: still supports class-hierarchy resolution.
    attr: Optional[str]
    #: Identifiers mentioned anywhere in the argument expressions.
    arg_names: Tuple[str, ...]
    #: Keyword names used at the call (``f(seed=…)`` threads explicitly).
    keywords: Tuple[str, ...]
    #: Dotted names of *references* passed as arguments (callbacks) —
    #: resolved into project functions by the call graph.
    ref_args: Tuple[str, ...]
    #: Lock ids lexically held at this site (innermost last).
    locks_held: Tuple[str, ...]
    #: ``except`` guards lexically enclosing this site (innermost first).
    guards: Tuple[Guard, ...]
    #: True when the call has ``*args``/``**kwargs`` splats (the summary
    #: cannot see what they forward, so seed checks stay conservative).
    has_splat: bool = False
    #: Positional argument count — distinguishes ``default_rng()`` (no
    #: arguments at all) from ``default_rng(12345)`` (a constant seed, which
    #: mentions no identifiers but is perfectly reproducible).
    num_args: int = 0

    def passes_seedish(self, tainted: frozenset) -> bool:
        """Does any argument thread seed provenance into the callee?

        Seed-looking identifiers are provenance roots wherever they appear
        (``child_seed`` unpacked from a task tuple, ``self.seed``), so the
        check accepts tainted names, seed-like names, and seed-like
        trailing attribute components alike.
        """
        if any(is_seedish_name(kw) for kw in self.keywords):
            return True
        if any(
            name in tainted or is_seedish_name(name)
            for name in self.arg_names
        ):
            return True
        return any(
            is_seedish_name(ref.rsplit(".", 1)[-1]) for ref in self.ref_args
        )


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` acquisition."""

    lock_id: str
    lineno: int
    #: Locks already held when this one is acquired (outermost first).
    held: Tuple[str, ...]


@dataclass(frozen=True)
class FaultSite:
    """One fault-injection point (``faults.fire``/decorator/context)."""

    site: str
    lineno: int
    col: int
    guards: Tuple[Guard, ...]


@dataclass
class FunctionSummary:
    """Facts about one function/method (or nested function)."""

    qname: str  # module-qualified: "repro.service.planner.PlannerService.plan"
    module: str
    path: str
    lineno: int
    col: int
    name: str
    class_name: Optional[str]
    #: Enclosing function qname for nested defs, else None.
    parent: Optional[str]
    params: Tuple[str, ...]
    #: Parameter name -> True when its default is the literal ``None``.
    param_defaults_none: Dict[str, bool] = field(default_factory=dict)
    decorators: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    lock_acquisitions: List[LockAcquisition] = field(default_factory=list)
    fault_sites: List[FaultSite] = field(default_factory=list)
    guards: List[Guard] = field(default_factory=list)
    #: Names carrying seed provenance (params + propagated locals).
    tainted: frozenset = frozenset()
    has_global_write: Optional[int] = None  # line of a `global` statement

    @property
    def seedish_params(self) -> Tuple[str, ...]:
        return tuple(p for p in self.params if is_seedish_name(p))

    @property
    def has_broad_terminal_guard(self) -> bool:
        return any(g.terminal for g in self.guards)


@dataclass
class ClassSummary:
    """One class: methods, base-class names, and whether `_lock` is an RLock."""

    name: str
    module: str
    path: str
    lineno: int
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: True when ``self._lock`` is assigned from ``threading.RLock()``.
    lock_reentrant: bool = False
    owns_lock: bool = False


@dataclass
class ModuleSummary:
    """One parsed module: functions, classes, imports, module-level locks."""

    module: str
    path: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Local alias -> canonical dotted name (absolute *and* relative imports).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to ``threading.Lock()`` / ``RLock()``.
    module_locks: Dict[str, bool] = field(default_factory=dict)  # name -> reentrant
    #: Module-level function/class names (definition order).
    toplevel: Set[str] = field(default_factory=set)

    def all_functions(self) -> List[FunctionSummary]:
        out = list(self.functions.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return out


# ---------------------------------------------------------------------------
# Guard classification
# ---------------------------------------------------------------------------


def _handler_types(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    node = handler.type
    if node is None:
        return ()
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    out = []
    for el in elts:
        dotted = dotted_name(el)
        out.append(dotted if dotted is not None else "<dynamic>")
    return tuple(out)


def _uses_name(body: Sequence[ast.stmt], name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for stmt in body
        for node in ast.walk(stmt)
    )


def _guard_from_handler(handler: ast.ExceptHandler) -> Guard:
    types = _handler_types(handler)
    is_broad = handler.type is None or any(
        t.rsplit(".", 1)[-1] in _BROAD_EXCEPTIONS for t in types
    )
    reraises = any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in ast.walk(stmt)
    )
    uses = bool(handler.name) and _uses_name(handler.body, handler.name)
    swallows = is_broad and not reraises and not uses
    return Guard(
        lineno=handler.lineno,
        types=types,
        is_broad=is_broad,
        reraises=reraises,
        swallows=swallows,
    )


# ---------------------------------------------------------------------------
# Import collection (absolute + relative)
# ---------------------------------------------------------------------------


def collect_imports(tree: ast.AST, module: str) -> Dict[str, str]:
    """Local alias -> canonical dotted name, resolving relative imports.

    ``from .keys import plan_key`` inside ``repro.service.planner`` maps
    ``plan_key -> repro.service.keys.plan_key``.  Star imports are ignored
    (none exist in this repository; the linter would flag them anyway).
    """
    package_parts = module.split(".")[:-1] if module else []
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative: level=1 is the current package, 2 its parent…
                up = node.level - 1
                base_parts = package_parts[: len(package_parts) - up] if up else list(package_parts)
                base = ".".join(base_parts)
                prefix = f"{base}.{node.module}" if node.module else base
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}"
    return aliases


# ---------------------------------------------------------------------------
# The summarizing visitor
# ---------------------------------------------------------------------------

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _target_names(target: ast.AST) -> Set[str]:
    """Plain-name targets of an assignment/for/comprehension target."""
    out: Set[str] = set()
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            out |= _target_names(el)
    elif isinstance(target, ast.Starred):
        out |= _target_names(target.value)
    return out


class _FunctionCollector(ast.NodeVisitor):
    """Walks one function body, tracking locks, guards, calls, taint."""

    def __init__(
        self,
        summary: FunctionSummary,
        module_summary: ModuleSummary,
        class_name: Optional[str],
        nested_sink: List[Tuple[ast.AST, str, Optional[str]]],
    ):
        self.summary = summary
        self.module_summary = module_summary
        self.class_name = class_name
        self.lock_stack: List[str] = []
        self.guard_stack: List[Guard] = []
        self.nested_sink = nested_sink
        #: (target_names, rhs_names) pairs for the taint fixpoint.
        self.assignments: List[Tuple[Set[str], Set[str]]] = []

    # -- lock identification -------------------------------------------
    def _lock_id(self, expr: ast.AST) -> Optional[str]:
        if _is_self_attr(expr, "_lock"):
            owner = self.class_name or "<module>"
            return f"{self.summary.module}.{owner}._lock"
        if isinstance(expr, ast.Name):
            if expr.id in self.module_summary.module_locks:
                return f"{self.summary.module}.{expr.id}"
        return None

    # -- statements -----------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                self.summary.lock_acquisitions.append(
                    LockAcquisition(
                        lock_id=lock,
                        lineno=item.context_expr.lineno,
                        held=tuple(self.lock_stack),
                    )
                )
                acquired.append(lock)
            else:
                # Non-lock context managers (including `faults.fault_point`,
                # which visit_Call records as a fault site) are plain calls.
                self.visit(item.context_expr)
        self.lock_stack.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.lock_stack.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Try(self, node: ast.Try) -> None:
        guards = [_guard_from_handler(h) for h in node.handlers]
        self.summary.guards.extend(guards)
        self.guard_stack.extend(guards)
        for stmt in node.body:
            self.visit(stmt)
        for _ in guards:
            self.guard_stack.pop()
        # Handler/else/finally bodies are *not* protected by this try.
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        for stmt in node.finalbody:
            self.visit(stmt)

    def visit_Global(self, node: ast.Global) -> None:
        if self.summary.has_global_write is None:
            self.summary.has_global_write = node.lineno

    def visit_Assign(self, node: ast.Assign) -> None:
        targets: Set[str] = set()
        for target in node.targets:
            targets |= _target_names(target)
        if targets:
            self.assignments.append((targets, _names_in(node.value)))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            targets = _target_names(node.target)
            if targets:
                self.assignments.append((targets, _names_in(node.value)))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        targets = _target_names(node.target)
        if targets:
            self.assignments.append((targets, _names_in(node.iter)))
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            targets = _target_names(gen.target)
            if targets:
                self.assignments.append((targets, _names_in(gen.iter)))

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    visit_SetComp = visit_ListComp  # type: ignore[assignment]
    visit_GeneratorExp = visit_ListComp  # type: ignore[assignment]

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # -- nested definitions ---------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.nested_sink.append((node, self.summary.qname, self.class_name))

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Classes nested in functions are rare and out of analysis scope;
        # still record their methods as nested functions for completeness.
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested_sink.append((item, self.summary.qname, node.name))

    # -- calls -----------------------------------------------------------
    def _maybe_fault_site(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        tail = dotted.rsplit(".", 1)[-1]
        if tail not in ("fire", "fault_point", "injection_point"):
            return
        if not ("faults" in dotted or tail in ("fault_point", "injection_point")):
            return
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            self.summary.fault_sites.append(
                FaultSite(
                    site=node.args[0].value,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    guards=tuple(reversed(self.guard_stack)),
                )
            )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        self._maybe_fault_site(node)

        arg_names: Set[str] = set()
        ref_args: List[str] = []
        has_splat = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                has_splat = True
                arg = arg.value
            arg_names |= _names_in(arg)
            ref_args.extend(self._ref_candidates(arg))
        keywords = []
        for kw in node.keywords:
            if kw.arg is None:
                has_splat = True
            else:
                keywords.append(kw.arg)
            arg_names |= _names_in(kw.value)
            ref_args.extend(self._ref_candidates(kw.value))

        attr_tail = (
            node.func.attr
            if dotted is None and isinstance(node.func, ast.Attribute)
            else None
        )
        self.summary.calls.append(
            CallSite(
                lineno=node.lineno,
                col=node.col_offset + 1,
                dotted=dotted,
                attr=attr_tail,
                arg_names=tuple(sorted(arg_names)),
                keywords=tuple(keywords),
                ref_args=tuple(dict.fromkeys(ref_args)),
                locks_held=tuple(self.lock_stack),
                guards=tuple(reversed(self.guard_stack)),
                has_splat=has_splat,
                num_args=len(node.args),
            )
        )
        # Visit arguments (nested calls) and non-name callee expressions.
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        if dotted is None:
            self.visit(node.func)
        elif isinstance(node.func, ast.Attribute):
            # The receiver chain may itself contain calls: a().b()
            self.visit(node.func.value)

    @staticmethod
    def _ref_candidates(expr: ast.AST) -> List[str]:
        """Bare function references inside an argument expression.

        ``run_ladder([("mc", guarded_mc)])`` passes ``guarded_mc`` by
        reference inside a list of tuples; any Name/Attribute that is not
        itself called is a candidate callback.  Resolution (and discarding
        of plain data names) happens in the call graph.
        """
        out: List[str] = []
        for node in ast.walk(expr):
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = dotted_name(node)
                if dotted is not None:
                    out.append(dotted)
        return out


def _params_of(node) -> Tuple[Tuple[str, ...], Dict[str, bool]]:
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    names = [a.arg for a in ordered]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
        ordered = ordered[1:]
    defaults_none: Dict[str, bool] = {}
    defaults = list(args.defaults)
    for arg, default in zip(ordered[len(ordered) - len(defaults):], defaults):
        defaults_none[arg.arg] = (
            isinstance(default, ast.Constant) and default.value is None
        )
    for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
        names.append(kwarg.arg)
        if default is not None:
            defaults_none[kwarg.arg] = (
                isinstance(default, ast.Constant) and default.value is None
            )
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names), defaults_none


def _summarize_function(
    node,
    module_summary: ModuleSummary,
    qname: str,
    class_name: Optional[str],
    parent: Optional[str],
    path: str,
) -> FunctionSummary:
    params, defaults_none = _params_of(node)
    decorators = tuple(
        d for d in (dotted_name(dec.func if isinstance(dec, ast.Call) else dec)
                    for dec in node.decorator_list)
        if d is not None
    )
    summary = FunctionSummary(
        qname=qname,
        module=module_summary.module,
        path=path,
        lineno=node.lineno,
        col=node.col_offset + 1,
        name=node.name,
        class_name=class_name,
        parent=parent,
        params=params,
        param_defaults_none=defaults_none,
        decorators=decorators,
    )
    # Decorator-declared fault sites: @faults.injection_point("site")
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            dotted = dotted_name(dec.func)
            if dotted and dotted.rsplit(".", 1)[-1] == "injection_point":
                if dec.args and isinstance(dec.args[0], ast.Constant) and isinstance(
                    dec.args[0].value, str
                ):
                    summary.fault_sites.append(
                        FaultSite(
                            site=dec.args[0].value,
                            lineno=dec.lineno,
                            col=dec.col_offset + 1,
                            guards=(),
                        )
                    )

    nested: List[Tuple[ast.AST, str, Optional[str]]] = []
    collector = _FunctionCollector(summary, module_summary, class_name, nested)
    for stmt in node.body:
        collector.visit(stmt)

    # Seed-taint fixpoint: roots are seed-looking params and locals; plain
    # assignments propagate taint from rhs mentions.
    tainted: Set[str] = {p for p in params if is_seedish_name(p)}
    pending = list(collector.assignments)
    changed = True
    while changed:
        changed = False
        for targets, rhs_names in pending:
            if targets & tainted:
                continue
            if any(is_seedish_name(n) for n in rhs_names) or (rhs_names & tainted):
                tainted |= targets
                changed = True
    # Any identifier that *looks* seeded is a root wherever it appears.
    summary.tainted = frozenset(tainted)

    # Nested defs become their own summaries, registered on the module.
    for child, parent_qname, child_class in nested:
        child_qname = f"{parent_qname}.<locals>.{child.name}"
        child_summary = _summarize_function(
            child, module_summary, child_qname, child_class, parent_qname, path
        )
        local_key = child_qname[len(module_summary.module) + 1:]
        module_summary.functions[local_key] = child_summary
    return summary


def _class_owns_lock(node: ast.ClassDef) -> Tuple[bool, bool]:
    """(owns ``self._lock``, lock is reentrant) for one class body."""
    owns = reentrant = False
    for item in ast.walk(node):
        value = None
        if isinstance(item, ast.Assign) and any(
            _is_self_attr(t, "_lock") for t in item.targets
        ):
            value = item.value
        elif isinstance(item, ast.AnnAssign) and _is_self_attr(item.target, "_lock"):
            value = item.value
        if value is None:
            continue
        owns = True
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted and dotted.rsplit(".", 1)[-1] == "RLock":
                reentrant = True
    return owns, reentrant


def summarize_module(source: SourceFile, module: str) -> ModuleSummary:
    """Summarize one parsed module under its dotted ``module`` name."""
    tree = source.tree
    assert tree is not None
    summary = ModuleSummary(
        module=module,
        path=source.path,
        imports=collect_imports(tree, module),
    )

    # Module-level locks first: function bodies reference them by name.
    for node in tree.body:  # type: ignore[attr-defined]
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = dotted_name(node.value.func)
            if dotted is None:
                continue
            canonical = summary.imports.get(
                dotted.split(".", 1)[0], dotted.split(".", 1)[0]
            )
            rest = dotted.split(".", 1)[1] if "." in dotted else ""
            full = f"{canonical}.{rest}" if rest else canonical
            if full in _LOCK_FACTORIES or dotted in ("Lock", "RLock"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        summary.module_locks[target.id] = full.endswith("RLock") or (
                            dotted == "RLock"
                        )

    for node in tree.body:  # type: ignore[attr-defined]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{module}.{node.name}"
            summary.functions[node.name] = _summarize_function(
                node, summary, qname, None, None, source.path
            )
            summary.toplevel.add(node.name)
        elif isinstance(node, ast.ClassDef):
            owns, reentrant = _class_owns_lock(node)
            cls = ClassSummary(
                name=node.name,
                module=module,
                path=source.path,
                lineno=node.lineno,
                bases=tuple(
                    b for b in (dotted_name(base) for base in node.bases)
                    if b is not None
                ),
                owns_lock=owns,
                lock_reentrant=reentrant,
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{module}.{node.name}.{item.name}"
                    cls.methods[item.name] = _summarize_function(
                        item, summary, qname, node.name, None, source.path
                    )
            summary.classes[node.name] = cls
            summary.toplevel.add(node.name)
    return summary
