"""Project-wide symbol table, call graph, and dataflow summaries.

This package is the cross-module half of ``repro-lint``.  The per-file
rules (RS1xx) see one AST at a time; the RS2xx rule pack needs to answer
*whole-program* questions — "does every path from a Monte-Carlo entry
point to an RNG draw thread a seed?", "can these two locks be acquired in
opposite orders?", "does an injected fault always reach a handler?" — and
those questions only make sense over a graph of every parsed module.

Layering:

* :mod:`repro.analysis.graph.symbols` — per-function *summaries*: calls
  (with the identifier dataflow needed for seed-taint), lock acquisition
  contexts, try/except guards, fault-injection sites, impurity markers.
  Summaries are pure functions of one AST; nothing cross-module happens
  here.
* :mod:`repro.analysis.graph.callgraph` — module naming + import
  resolution, the project symbol table, call-site resolution (direct,
  self/class, and name-based class-hierarchy resolution for attribute
  calls), callback edges for function references passed as arguments,
  and the resolution-rate statistics surfaced by ``repro-lint --graph
  --stats``.

Everything is dependency-free (``ast`` only), like the rest of the
analysis engine.
"""

from repro.analysis.graph.callgraph import (
    CallGraph,
    GraphStats,
    build_graph,
)
from repro.analysis.graph.symbols import (
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)

__all__ = [
    "CallGraph",
    "GraphStats",
    "build_graph",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
]
