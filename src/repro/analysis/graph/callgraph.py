"""Module naming, symbol table, and call-site resolution.

:func:`build_graph` turns the engine's parsed :class:`SourceFile` set into
a :class:`CallGraph`: every function summarized (:mod:`.symbols`), every
call site classified, and an edge list the RS2xx rules traverse.

Module naming
    A file's dotted module name is derived from the longest chain of
    parent directories that each contain an ``__init__.py`` *within the
    scanned set* (``src/repro/service/planner.py`` → ``repro.service
    .planner`` when ``src/`` itself has no ``__init__.py``).  Bare fixture
    trees without ``__init__.py`` fall back to the full path-derived name,
    and a dotted-*suffix* index bridges the difference when imports in the
    fixture say ``pkg.helpers`` but the derived name is ``tmp.pkg
    .helpers`` — an exact match wins, a unique suffix match is accepted,
    an ambiguous suffix stays unresolved.

Call-site classification (the ``--stats`` buckets)
    * ``resolved`` — at least one project function identified, via local /
      module scope, the import map, ``self``/``cls`` + base-class lookup,
      or name-based class-hierarchy analysis (CHA) for attribute calls;
    * ``external`` — provably outside the project: the canonical name
      roots in a non-project module (``numpy``, ``threading`` …), is a
      builtin, or is an attribute that *no* project class defines (the
      symbol table is complete for project code, so ``d.setdefault`` with
      no project ``setdefault`` anywhere cannot be a project call);
    * ``dynamic`` — genuinely unresolvable statically: lambdas, calls on
      call results, calls through parameters/locals bound at runtime.

    ``resolution_rate = resolved / (resolved + dynamic)`` — external calls
    are excluded from the denominator because they are not *intra-project*
    call sites (see docs/ANALYSIS.md for the caveats).

Edges
    ``direct`` (single known target), ``cha`` (one of several same-named
    methods — sound for reachability, deliberately excluded from the
    lock-order closure to avoid container-method false cycles), and
    ``ref`` (callback: a function *reference* passed as an argument, edge
    drawn from the receiving call's project targets — e.g. ``run_ladder``
    → each rung evaluator).
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.finding import SourceFile
from repro.analysis.graph.symbols import (
    CallSite,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)

__all__ = ["Edge", "GraphStats", "CallGraph", "build_graph", "module_name_for"]

GRAPH_SCHEMA_VERSION = 1

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Method names so common on builtin containers/strings that a name-based
#: CHA edge through them is almost always noise.  The edges still exist
#: (kind="cha") — rules that need precision skip this set when traversing.
COMMON_METHOD_NAMES = frozenset(
    {
        "get",
        "items",
        "keys",
        "values",
        "append",
        "extend",
        "add",
        "pop",
        "update",
        "copy",
        "clear",
        "join",
        "split",
        "strip",
        "format",
        "encode",
        "decode",
        "read",
        "write",
        "close",
        "sort",
        "count",
        "index",
    }
)


@dataclass(frozen=True)
class Edge:
    """One resolved call edge.  ``site`` is the originating call site —
    for ``ref`` edges it is the *registering* call (where the reference
    was passed), not the unknown invocation point inside ``caller``."""

    caller: str  # function qname
    callee: str  # function qname
    kind: str  # "direct" | "cha" | "ref"
    site: CallSite

    def to_dict(self) -> Dict[str, object]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "kind": self.kind,
            "line": self.site.lineno,
        }


@dataclass
class GraphStats:
    """Resolution statistics for ``repro-lint --graph --stats``."""

    n_modules: int = 0
    n_functions: int = 0
    n_classes: int = 0
    n_call_sites: int = 0
    n_resolved: int = 0
    n_external: int = 0
    n_dynamic: int = 0
    n_edges: int = 0

    @property
    def resolution_rate(self) -> float:
        denom = self.n_resolved + self.n_dynamic
        return self.n_resolved / denom if denom else 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "modules": self.n_modules,
            "functions": self.n_functions,
            "classes": self.n_classes,
            "call_sites": self.n_call_sites,
            "resolved": self.n_resolved,
            "external": self.n_external,
            "dynamic": self.n_dynamic,
            "edges": self.n_edges,
            "resolution_rate": round(self.resolution_rate, 4),
        }


@dataclass
class CallGraph:
    """The project symbol table plus the resolved edge list."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    stats: GraphStats = field(default_factory=GraphStats)
    out_edges: Dict[str, List[Edge]] = field(default_factory=dict)
    in_edges: Dict[str, List[Edge]] = field(default_factory=dict)
    #: Classes defining each method name (for rules doing their own CHA).
    method_index: Dict[str, List[str]] = field(default_factory=dict)

    # -- name helpers ----------------------------------------------------
    def canonical(self, module: str, dotted: str) -> str:
        """Map a dotted source name through the module's import aliases."""
        summary = self.modules.get(module)
        if summary is None:
            return dotted
        head, _, rest = dotted.partition(".")
        canonical_head = summary.imports.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head

    # -- traversal -------------------------------------------------------
    def callees_of(self, qname: str, kinds: Optional[Iterable[str]] = None) -> List[Edge]:
        edges = self.out_edges.get(qname, [])
        if kinds is None:
            return list(edges)
        wanted = set(kinds)
        return [e for e in edges if e.kind in wanted]

    def callers_of(self, qname: str, kinds: Optional[Iterable[str]] = None) -> List[Edge]:
        edges = self.in_edges.get(qname, [])
        if kinds is None:
            return list(edges)
        wanted = set(kinds)
        return [e for e in edges if e.kind in wanted]

    def reachable_from(
        self,
        roots: Iterable[str],
        kinds: Optional[Iterable[str]] = None,
        skip_common_cha: bool = False,
    ) -> Set[str]:
        """Forward closure over the edge list (roots included)."""
        wanted = set(kinds) if kinds is not None else None
        seen: Set[str] = set()
        frontier = [q for q in roots if q in self.functions]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for edge in self.out_edges.get(current, ()):
                if wanted is not None and edge.kind not in wanted:
                    continue
                if (
                    skip_common_cha
                    and edge.kind == "cha"
                    and edge.callee.rsplit(".", 1)[-1] in COMMON_METHOD_NAMES
                ):
                    continue
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    frontier.append(edge.callee)
        return seen

    # -- serialization ---------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        functions = []
        for qname in sorted(self.functions):
            fs = self.functions[qname]
            functions.append(
                {
                    "qname": qname,
                    "module": fs.module,
                    "path": fs.path,
                    "line": fs.lineno,
                    "params": list(fs.params),
                    "calls": len(fs.calls),
                    "locks": [a.lock_id for a in fs.lock_acquisitions],
                    "fault_sites": [f.site for f in fs.fault_sites],
                }
            )
        return {
            "version": GRAPH_SCHEMA_VERSION,
            "stats": self.stats.to_dict(),
            "functions": functions,
            "edges": [
                e.to_dict()
                for e in sorted(
                    self.edges, key=lambda e: (e.caller, e.callee, e.site.lineno)
                )
            ],
        }


# ---------------------------------------------------------------------------
# Module naming
# ---------------------------------------------------------------------------


def _package_dirs(paths: Sequence[str]) -> Set[Tuple[str, ...]]:
    return {
        PurePosixPath(p).parts[:-1]
        for p in paths
        if PurePosixPath(p).name == "__init__.py"
    }


def module_name_for(path: str, packages: Set[Tuple[str, ...]]) -> str:
    """Dotted module name for ``path`` given the scanned package dirs."""
    parts = PurePosixPath(path).parts
    dirs, name = parts[:-1], parts[-1]
    stem = name[:-3] if name.endswith(".py") else name
    # Longest chain of trailing dirs that are all packages.
    start = len(dirs)
    for i in range(len(dirs)):
        if all(dirs[:j] in packages for j in range(i + 1, len(dirs) + 1)):
            start = i
            break
    pkg_parts = dirs[start:]
    if not pkg_parts and not packages:
        # Bare tree (e.g. test fixtures): fall back to the path-derived name
        # so relative imports still have a package to resolve against.
        pkg_parts = dirs
    if stem == "__init__":
        return ".".join(pkg_parts) if pkg_parts else stem
    return ".".join((*pkg_parts, stem))


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------


class _Resolver:
    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: Top-level components of project module names ("repro", …).
        self.project_roots: Set[str] = {
            m.split(".", 1)[0] for m in graph.modules
        }
        self._suffix_cache: Dict[str, Optional[str]] = {}

    # -- symbol-table lookups -------------------------------------------
    def _exact(self, canonical: str) -> Optional[List[str]]:
        """Exact qname lookup: function, or class → its ``__init__``."""
        graph = self.graph
        if canonical in graph.functions:
            return [canonical]
        if canonical in graph.classes:
            ctor = f"{canonical}.__init__"
            return [ctor] if ctor in graph.functions else []
        return None

    def _suffix(self, canonical: str) -> Optional[List[str]]:
        """Unique dotted-suffix match (fixture trees, partial scans)."""
        if canonical in self._suffix_cache:
            hit = self._suffix_cache[canonical]
            return None if hit is None else self._exact(hit)
        needle = f".{canonical}"
        hits = [q for q in self.graph.functions if q.endswith(needle)]
        hits += [c for c in self.graph.classes if c.endswith(needle)]
        resolved = hits[0] if len(hits) == 1 else None
        self._suffix_cache[canonical] = resolved
        return None if resolved is None else self._exact(resolved)

    def lookup(self, canonical: str) -> Optional[List[str]]:
        # `_exact` returning [] (a class with no explicit __init__) is a
        # successful resolution with no edge — don't fall through to suffix.
        exact = self._exact(canonical)
        if exact is not None:
            return exact
        return self._suffix(canonical)

    # -- class hierarchy -------------------------------------------------
    def _project_class(self, module: ModuleSummary, name: str) -> Optional[ClassSummary]:
        """Resolve a (possibly dotted/imported) class name to a summary."""
        if name in module.classes:
            return module.classes[name]
        canonical = self.graph.canonical(module.module, name)
        cls = self.graph.classes.get(canonical)
        if cls is not None:
            return cls
        tail = canonical.rsplit(".", 1)[-1]
        hits = [c for q, c in self.graph.classes.items() if q.endswith(f".{tail}")]
        return hits[0] if len(hits) == 1 else None

    def method_on(
        self, module: ModuleSummary, class_name: str, method: str
    ) -> Optional[FunctionSummary]:
        """Find ``method`` on ``class_name`` or its (project) bases, BFS."""
        seen: Set[str] = set()
        queue: List[Tuple[ModuleSummary, str]] = [(module, class_name)]
        while queue:
            mod, name = queue.pop(0)
            cls = self._project_class(mod, name)
            if cls is None or cls.name in seen:
                continue
            seen.add(cls.name)
            if method in cls.methods:
                return cls.methods[method]
            base_module = self.graph.modules.get(cls.module, mod)
            for base in cls.bases:
                queue.append((base_module, base))
        return None

    # -- per-site resolution --------------------------------------------
    def resolve(
        self, fn: FunctionSummary, site: CallSite
    ) -> Tuple[str, List[Tuple[str, str]]]:
        """Classify one call site.

        Returns ``(classification, targets)`` where classification is
        ``"resolved"`` / ``"external"`` / ``"dynamic"`` and targets are
        ``(qname, kind)`` pairs.
        """
        dotted = site.dotted
        module = self.graph.modules[fn.module]
        if dotted is None:
            if site.attr is not None:
                # `a().b()` / `d[k].save()`: the receiver is opaque but the
                # attribute name still narrows it down via CHA.
                return self._cha(site.attr)
            return "dynamic", []

        if "." not in dotted:
            return self._resolve_simple(fn, module, dotted)
        return self._resolve_attribute(fn, module, dotted)

    def _local_scope(
        self, fn: FunctionSummary, module: ModuleSummary, name: str
    ) -> Optional[FunctionSummary]:
        """Nested defs visible from ``fn``: its own, then enclosing ones."""
        qname: Optional[str] = fn.qname
        while qname is not None:
            local = qname[len(module.module) + 1 :]
            candidate = module.functions.get(f"{local}.<locals>.{name}")
            if candidate is not None:
                return candidate
            enclosing = self.graph.functions.get(qname)
            qname = enclosing.parent if enclosing is not None else None
        return None

    def _resolve_simple(
        self, fn: FunctionSummary, module: ModuleSummary, name: str
    ) -> Tuple[str, List[Tuple[str, str]]]:
        nested = self._local_scope(fn, module, name)
        if nested is not None:
            return "resolved", [(nested.qname, "direct")]
        if name in module.functions and name in module.toplevel:
            return "resolved", [(module.functions[name].qname, "direct")]
        if name in module.classes:
            ctor = module.classes[name].methods.get("__init__")
            return "resolved", [(ctor.qname, "direct")] if ctor else []
        if name in module.imports:
            return self._resolve_import(module.imports[name])
        if name == "cls" and fn.class_name is not None:
            ctor = self.method_on(module, fn.class_name, "__init__")
            return "resolved", [(ctor.qname, "direct")] if ctor else []
        if name in _BUILTIN_NAMES:
            return "external", []
        # A parameter or local bound at runtime (callback invocation).
        return "dynamic", []

    def _resolve_import(
        self, canonical: str, depth: int = 0
    ) -> Tuple[str, List[Tuple[str, str]]]:
        targets = self.lookup(canonical)
        if targets is not None:
            return "resolved", [(t, "direct") for t in targets]
        root = canonical.split(".", 1)[0]
        if root in self.project_roots:
            owner, _, leaf = canonical.rpartition(".")
            owner_mod = self.graph.modules.get(owner)
            if owner_mod is not None:
                # Package re-export: `from repro.platforms.spot import X`
                # where spot/__init__.py itself does `from .scenario
                # import X` — chase the indirection (bounded: re-export
                # chains are short and could in principle cycle).
                reexport = owner_mod.imports.get(leaf)
                if reexport is not None and reexport != canonical and depth < 5:
                    return self._resolve_import(reexport, depth + 1)
                # A scanned module whose `leaf` names no function/class
                # (a module-level constant, data): dynamic.
                return "dynamic", []
            if canonical in self.graph.modules:
                return "dynamic", []
            # Project-rooted but the module was not scanned: external to
            # this analysis run.
            return "external", []
        return "external", []

    def _resolve_attribute(
        self, fn: FunctionSummary, module: ModuleSummary, dotted: str
    ) -> Tuple[str, List[Tuple[str, str]]]:
        head, _, rest = dotted.partition(".")
        attr = dotted.rsplit(".", 1)[-1]

        # Through the import map: `keys.plan_key`, `np.mean`, `time.sleep`.
        if head in module.imports:
            canonical = f"{module.imports[head]}.{rest}"
            classification, targets = self._resolve_import(canonical)
            if classification == "resolved":
                return classification, targets
            if classification == "external":
                return "external", []
            # fall through to CHA for `module_alias.obj.method` chains

        # `self.method()` / `cls.method()` on the enclosing class.
        if head in ("self", "cls") and fn.class_name is not None and "." not in rest:
            found = self.method_on(module, fn.class_name, attr)
            if found is not None:
                return "resolved", [(found.qname, "direct")]

        # `ClassName.method(...)` with a module-local or imported class.
        if "." not in rest:
            cls = module.classes.get(head)
            if cls is None and head in module.imports:
                cls = self.graph.classes.get(module.imports[head])
            if cls is not None:
                found = self.method_on(module, cls.name, attr)
                if found is not None:
                    return "resolved", [(found.qname, "direct")]

        return self._cha(attr)

    def _cha(self, attr: str) -> Tuple[str, List[Tuple[str, str]]]:
        """Name-based CHA: every project class defining ``attr``.

        Always kind="cha", even with a single owner — the *mechanism* is a
        textual method-name match on an untyped receiver, and precision-
        sensitive consumers (the lock-order closure) filter on that.
        """
        owners = self.graph.method_index.get(attr)
        if owners:
            return "resolved", [(f"{owner}.{attr}", "cha") for owner in owners]
        # No project class defines this attribute anywhere — the symbol
        # table is complete for project code, so this is provably external.
        return "external", []

    # -- callback references --------------------------------------------
    def resolve_ref(
        self, fn: FunctionSummary, ref: str
    ) -> Optional[FunctionSummary]:
        """A function *reference* in an argument: local / module / import /
        ``self.method`` only — never CHA (a bare data name must not
        accidentally match some method somewhere)."""
        module = self.graph.modules[fn.module]
        if "." not in ref:
            nested = self._local_scope(fn, module, ref)
            if nested is not None:
                return nested
            if ref in module.functions and ref in module.toplevel:
                return module.functions[ref]
            if ref in module.imports:
                targets = self.lookup(module.imports[ref])
                if targets:
                    return self.graph.functions.get(targets[0])
            return None
        head, _, rest = ref.partition(".")
        if head in ("self", "cls") and fn.class_name is not None and "." not in rest:
            return self.method_on(module, fn.class_name, rest)
        if head in module.imports:
            targets = self.lookup(f"{module.imports[head]}.{rest}")
            if targets:
                return self.graph.functions.get(targets[0])
        return None


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


def build_graph(sources: Sequence[SourceFile]) -> CallGraph:
    """Summarize + resolve every parsed source into a :class:`CallGraph`."""
    graph = CallGraph()
    packages = _package_dirs([s.path for s in sources])

    for source in sources:
        if source.tree is None:
            continue
        module = module_name_for(source.path, packages)
        summary = summarize_module(source, module)
        graph.modules[module] = summary
        for fs in summary.all_functions():
            graph.functions[fs.qname] = fs
        for cls in summary.classes.values():
            graph.classes[f"{module}.{cls.name}"] = cls
            for method in cls.methods:
                graph.method_index.setdefault(method, []).append(
                    f"{module}.{cls.name}"
                )

    stats = graph.stats
    stats.n_modules = len(graph.modules)
    stats.n_functions = len(graph.functions)
    stats.n_classes = len(graph.classes)

    resolver = _Resolver(graph)
    edge_seen: Set[Tuple[str, str, str, int]] = set()

    def add_edge(caller: str, callee: str, kind: str, site: CallSite) -> None:
        key = (caller, callee, kind, site.lineno)
        if key in edge_seen or callee not in graph.functions:
            return
        edge_seen.add(key)
        edge = Edge(caller=caller, callee=callee, kind=kind, site=site)
        graph.edges.append(edge)
        graph.out_edges.setdefault(caller, []).append(edge)
        graph.in_edges.setdefault(callee, []).append(edge)

    for fn in graph.functions.values():
        for site in fn.calls:
            classification, targets = resolver.resolve(fn, site)
            stats.n_call_sites += 1
            if classification == "resolved":
                stats.n_resolved += 1
            elif classification == "external":
                stats.n_external += 1
            else:
                stats.n_dynamic += 1
            for qname, kind in targets:
                add_edge(fn.qname, qname, kind, site)

            if not site.ref_args:
                continue
            refs = [
                r
                for r in (resolver.resolve_ref(fn, ref) for ref in site.ref_args)
                if r is not None
            ]
            if not refs:
                continue
            # A reference handed to a project function may be invoked by
            # it (callback edge target → ref); handed to an external or
            # dynamic callee, the invocation still originates in `fn`'s
            # dataflow, so the caller keeps the edge.
            receivers = [q for q, _ in targets] or [fn.qname]
            for ref_fn in refs:
                if ref_fn.qname == fn.qname:
                    continue
                for receiver in receivers:
                    add_edge(receiver, ref_fn.qname, "ref", site)

    stats.n_edges = len(graph.edges)
    return graph
