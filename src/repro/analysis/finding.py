"""Finding and source-file primitives shared by the ``repro.analysis`` engine.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: the engine produces them, the baseline fingerprints them,
and the reporters render them — none of those layers mutates them.

Fingerprints deliberately ignore the line *number* and hash the line
*content* instead, so a committed baseline survives unrelated edits above a
legacy finding (the ratchet only trips when new violations appear).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Tuple

__all__ = ["Finding", "SourceFile", "PARSE_ERROR_RULE"]

#: Pseudo-rule id attached to files the engine cannot parse.  Parse errors
#: can never be baselined or suppressed — broken syntax blocks everything.
PARSE_ERROR_RULE = "E001"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or parse error) at one source location."""

    rule: str
    path: str  # posix-style, relative to the analysis root
    line: int
    col: int
    message: str

    def fingerprint(self, line_text: str = "") -> str:
        """Stable identity for baseline matching (line-number independent)."""
        basis = "\x1f".join((self.rule, self.path, line_text.strip()))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:20]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """One parsed module: path, text, AST, and per-line suppressions.

    ``parts`` are the posix path segments relative to the analysis root —
    rules use them for scoping (e.g. RS102 only looks at files under a
    ``core/``, ``strategies/`` or ``distributions/`` directory), which keeps
    the rules testable against fixture trees laid out the same way.
    """

    path: str
    text: str
    tree: Optional[ast.AST]
    #: line -> set of rule ids disabled on that line ("all" disables every rule)
    suppressions: Dict[int, set] = field(default_factory=dict)
    parse_error: Optional[str] = None

    @property
    def parts(self) -> Tuple[str, ...]:
        return PurePosixPath(self.path).parts

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def line_text(self, lineno: int) -> str:
        lines = self.text.splitlines()
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        disabled = self.suppressions.get(line)
        return bool(disabled) and (rule in disabled or "all" in disabled)
