"""``repro.analysis`` — domain-aware static analysis (``repro-lint``).

The paper's results rest on disciplined randomness, exact protocol
conformance, and race-free serving code; this package enforces those
properties mechanically, at lint time, with zero dependencies beyond the
stdlib ``ast``/``tokenize``:

=======  ==========================================================
RS101    unseeded / global RNG (``np.random.*``, ``random.*``,
         argless ``default_rng()``)
RS102    float ``==`` / ``!=`` in the numeric packages
RS103    Distribution protocol conformance for every registered law
RS104    lock discipline in ``service/`` and ``observability/``
RS105    bare / over-broad ``except`` that drops the error
RS106    metric names not in ``repro/observability/names.py``
=======  ==========================================================

See ``docs/ANALYSIS.md`` for the full rule catalogue, the suppression
syntax (``# repro-lint: disable=RS102 -- reason``), and the baseline
ratchet workflow.
"""

from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.engine import AnalysisResult, analyze_paths, collect_files
from repro.analysis.finding import Finding, SourceFile
from repro.analysis.reporters import Report, render_json, render_text
from repro.analysis.rules import all_rules, rule_classes

__all__ = [
    "AnalysisResult",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "Report",
    "SourceFile",
    "all_rules",
    "analyze_paths",
    "collect_files",
    "render_json",
    "render_text",
    "rule_classes",
]
