"""Baseline ratchet: legacy findings don't block, new findings do.

The committed baseline (``.repro-lint-baseline.json``) records fingerprints
of findings that predate the linter.  At check time each current finding is
matched against the baseline:

* matched  -> *baselined*: reported, but does not fail the run;
* unmatched -> *new*: fails the run (exit code 1);
* baseline entries with no current finding -> *stale*: the debt shrank;
  rewrite the baseline (``--write-baseline``) to lock the progress in.

Fingerprints hash (rule, path, line content), not line numbers, so edits
elsewhere in a file don't churn the baseline.  Identical lines in one file
are handled by count: the baseline stores how many of each fingerprint it
tolerates.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.finding import PARSE_ERROR_RULE, Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass
class Baseline:
    """Tolerated legacy findings: fingerprint -> count (+ display info)."""

    counts: Dict[str, int] = field(default_factory=dict)
    #: fingerprint -> {"rule": ..., "path": ...} for human-readable output
    info: Dict[str, Dict[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        p = Path(path)
        if not p.exists():
            return cls()
        doc = json.loads(p.read_text(encoding="utf-8"))
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline format "
                f"(expected version {BASELINE_VERSION})"
            )
        baseline = cls()
        for entry in doc.get("entries", []):
            fp = str(entry["fingerprint"])
            baseline.counts[fp] = int(entry.get("count", 1))
            baseline.info[fp] = {
                "rule": str(entry.get("rule", "?")),
                "path": str(entry.get("path", "?")),
            }
        return baseline

    def save(
        self, path: str, fingerprinted: Sequence[Tuple[Finding, str]]
    ) -> int:
        """Write the given findings as the new baseline; returns the count.

        Parse errors are never baselined: a file that doesn't parse must be
        fixed, not tolerated.
        """
        tallies: Counter = Counter()
        display: Dict[str, Finding] = {}
        for finding, fp in fingerprinted:
            if finding.rule == PARSE_ERROR_RULE:
                continue
            tallies[fp] += 1
            display.setdefault(fp, finding)
        entries = [
            {
                "fingerprint": fp,
                "count": count,
                "rule": display[fp].rule,
                "path": display[fp].path,
                "message": display[fp].message,
            }
            for fp, count in sorted(tallies.items(), key=lambda kv: (
                display[kv[0]].path, display[kv[0]].line, kv[0]
            ))
        ]
        doc = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        return len(entries)

    # ------------------------------------------------------------------
    def partition(
        self, fingerprinted: Sequence[Tuple[Finding, str]]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into (new, baselined) and list stale fingerprints.

        For each fingerprint the first ``counts[fp]`` occurrences are
        baselined; anything beyond — and any unknown fingerprint — is new.
        """
        remaining = dict(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding, fp in fingerprinted:
            if finding.rule != PARSE_ERROR_RULE and remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = sorted(fp for fp, left in remaining.items() if left > 0)
        return new, baselined, stale

    def describe(self, fingerprint: str) -> str:
        info = self.info.get(fingerprint, {})
        return f"{info.get('rule', '?')} in {info.get('path', '?')}"

    def __len__(self) -> int:
        return sum(self.counts.values())
