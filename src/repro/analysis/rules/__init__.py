"""Rule registry for ``repro-lint``.

Rules self-register via the :func:`register` decorator; :func:`all_rules`
imports the built-in rule modules on first use and returns fresh instances,
so two engine runs never share rule state.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.rules.base import ProjectRule, Rule

__all__ = ["register", "all_rules", "rule_classes", "ProjectRule", "Rule"]

_REGISTRY: Dict[str, Type[Rule]] = {}

_BUILTIN_MODULES = (
    "repro.analysis.rules.rs101_rng",
    "repro.analysis.rules.rs102_float_eq",
    "repro.analysis.rules.rs103_protocol",
    "repro.analysis.rules.rs104_locks",
    "repro.analysis.rules.rs105_except",
    "repro.analysis.rules.rs106_metric_names",
    "repro.analysis.rules.rs201_seed_taint",
    "repro.analysis.rules.rs202_lock_order",
    "repro.analysis.rules.rs203_exception_flow",
    "repro.analysis.rules.rs204_plan_key_purity",
)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule_id = cls.rule_id
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {rule_id!r}: {existing} vs {cls}")
    _REGISTRY[rule_id] = cls
    return cls


def _load_builtins() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def rule_classes() -> Dict[str, Type[Rule]]:
    """All registered rule classes by id (loads the built-ins)."""
    _load_builtins()
    return dict(sorted(_REGISTRY.items()))


def all_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of the selected rules (default: every rule).

    Unknown ids in ``select`` raise ``KeyError`` — a typo in ``--select``
    should fail loudly, not silently lint with fewer rules.
    """
    classes = rule_classes()
    if select is None:
        return [cls() for cls in classes.values()]
    unknown = [rid for rid in select if rid not in classes]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {unknown}; known: {sorted(classes)}"
        )
    return [classes[rid]() for rid in select]
