"""RS203 — every injected fault must reach a real handler.

PR 5's contract is that chaos runs degrade gracefully: an
:class:`~repro.resilience.faults.InjectedFault` raised at any of the
registered sites (``pool.worker``, ``plancache.save``, ``plancache.load``,
``server.request``, ``mc.chunk``) is retried, absorbed by the degradation
ladder, or surfaced as a structured error — never a naked traceback out
of ``main`` and never silently swallowed.

This rule walks the *reverse* call graph from each fault-injection site:

* a **terminal guard** — broad (``except Exception``/bare), not
  re-raising, and demonstrably using the error — stops propagation
  (``run_ladder``'s rung handler, the server's top-level request
  handler);
* a guard that catches but **re-raises** (``RetryPolicy`` exhausting its
  attempts, the snapshot writer's ``BaseException``+``raise`` cleanup) is
  a waypoint, not a stop — ascent continues through its callers;
* a broad guard that catches and **ignores** the error is reported as an
  RS105-style swallow *on a fault path* — worse than a crash, because
  chaos CI can no longer see the fault at all;
* reaching a function with **no callers** without ever meeting a
  terminal guard means the fault escapes uncaught — reported with the
  escape roots.

Callback edges count as real calls (``backend.map`` really invokes the
chunk task), with the *caller's* handlers applied conservatively since
the exact invocation point is unknown.  CHA edges are followed only
between modules of the same subpackage — a textual method-name match
across subsystems (``Baseline.save`` vs ``PlanCache.save``) must not
fabricate an escape path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.finding import Finding
from repro.analysis.graph.callgraph import CallGraph
from repro.analysis.graph.symbols import FaultSite, FunctionSummary, Guard
from repro.analysis.rules import register
from repro.analysis.rules.base import GraphRule

__all__ = ["ExceptionFlowRule", "INJECTED_EXCEPTION"]

#: The class every fault site raises (see repro.resilience.faults).
INJECTED_EXCEPTION = "InjectedFault"


def _same_subpackage(a: str, b: str) -> bool:
    return a.split(".")[:2] == b.split(".")[:2]


@register
class ExceptionFlowRule(GraphRule):
    rule_id = "RS203"
    summary = (
        "fault-injection site not dominated by a terminal handler "
        "(escapes uncaught or dies in a swallow)"
    )

    def check_graph(self, graph: CallGraph) -> Iterator[Finding]:
        for fn in graph.functions.values():
            for fault in fn.fault_sites:
                yield from self._trace(graph, fn, fault)

    # -- guard evaluation ------------------------------------------------
    def _apply_guards(
        self, guards: Sequence[Guard]
    ) -> Tuple[str, Optional[Guard]]:
        """Outcome of the exception meeting ``guards`` innermost-first:
        ``("stopped", g)``, ``("swallowed", g)``, or ``("escapes", None)``.
        """
        for guard in guards:
            if not guard.catches(INJECTED_EXCEPTION):
                continue
            if guard.reraises:
                continue  # caught, cleaned up, re-raised: keep ascending
            if guard.swallows:
                return "swallowed", guard
            return "stopped", guard
        return "escapes", None

    # -- the reverse walk ------------------------------------------------
    def _trace(
        self, graph: CallGraph, fn: FunctionSummary, fault: FaultSite
    ) -> Iterator[Finding]:
        outcome, guard = self._apply_guards(fault.guards)
        if outcome == "stopped":
            return
        if outcome == "swallowed":
            assert guard is not None
            yield self._swallow_finding(fn, fault, fn, guard)
            return

        escape_roots: List[str] = []
        swallows: List[Tuple[FunctionSummary, Guard]] = []
        swallow_seen: Set[Tuple[str, int]] = set()
        visited: Set[str] = {fn.qname}
        frontier: List[str] = [fn.qname]
        while frontier:
            current = frontier.pop(0)
            summary = graph.functions[current]
            callers = [
                e
                for e in graph.in_edges.get(current, ())
                if e.kind != "cha"
                or _same_subpackage(summary.module, e.caller)
            ]
            if not callers:
                escape_roots.append(current)
                continue
            for edge in callers:
                caller = graph.functions.get(edge.caller)
                if caller is None:
                    continue
                if edge.kind == "ref":
                    # The invocation point inside the receiver is unknown;
                    # give it the benefit of every handler the receiver has.
                    guards: Sequence[Guard] = tuple(caller.guards)
                else:
                    guards = edge.site.guards
                outcome, guard = self._apply_guards(guards)
                if outcome == "stopped":
                    continue
                if outcome == "swallowed":
                    assert guard is not None
                    key = (caller.qname, guard.lineno)
                    if key not in swallow_seen:
                        swallow_seen.add(key)
                        swallows.append((caller, guard))
                    continue
                if caller.qname not in visited:
                    visited.add(caller.qname)
                    frontier.append(caller.qname)

        for where, guard in swallows:
            yield self._swallow_finding(fn, fault, where, guard)
        if escape_roots:
            roots = ", ".join(f"`{r}`" for r in sorted(escape_roots)[:3])
            yield self.graph_finding(
                fn.path,
                fault.lineno,
                fault.col,
                f"fault site '{fault.site}' can propagate uncaught to "
                f"{roots}; no RetryPolicy/degradation-ladder handler "
                "dominates this path",
            )

    def _swallow_finding(
        self,
        origin: FunctionSummary,
        fault: FaultSite,
        where: FunctionSummary,
        guard: Guard,
    ) -> Finding:
        return self.graph_finding(
            where.path,
            guard.lineno,
            1,
            f"broad handler silently swallows fault site '{fault.site}' "
            f"(injected in `{origin.qname}`); chaos runs cannot observe "
            "the fault — record, re-raise, or degrade explicitly",
        )
