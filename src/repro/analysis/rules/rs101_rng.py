"""RS101 — unseeded or global random number generation.

Every stochastic result in this library (the Eq. 13 Monte-Carlo estimator
above all) is only reproducible if randomness flows through an explicit
seed / :class:`numpy.random.Generator` — the contract documented in
:mod:`repro.utils.rng`.  Three idioms silently break it:

* ``np.random.<anything legacy>`` — draws from (or reseeds) NumPy's hidden
  module-global ``RandomState``;
* the stdlib ``random`` module — a second hidden global stream, untracked
  by the seed plumbing;
* ``default_rng()`` with no argument — a fresh OS-entropy generator whose
  output can never be replayed.

Whitelisted site: ``utils/rng.py`` itself, the one module allowed to talk
to :func:`numpy.random.default_rng` on behalf of everyone else.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding, SourceFile
from repro.analysis.rules import register
from repro.analysis.rules.base import ImportMap, Rule

__all__ = ["UnseededRngRule"]

#: numpy.random attributes that are fine to reference: the modern explicit
#: Generator construction surface, not the legacy global-state functions.
_SAFE_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class UnseededRngRule(Rule):
    rule_id = "RS101"
    summary = "unseeded or global RNG use (np.random.*, random.*, argless default_rng())"

    def applies_to(self, source: SourceFile) -> bool:
        # utils/rng.py is the sanctioned seed-plumbing module.
        return source.parts[-2:] != ("utils", "rng.py")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_strict(node.func)
            if target is None:
                continue
            yield from self._check_call(source, node, target)

    def _check_call(
        self, source: SourceFile, node: ast.Call, target: str
    ) -> Iterator[Finding]:
        if target.startswith("numpy.random."):
            attr = target[len("numpy.random."):]
            if attr not in _SAFE_NP_RANDOM:
                yield self.finding(
                    source,
                    node,
                    f"call to legacy global-state RNG `np.random.{attr}`; "
                    "thread an explicit seed through "
                    "`repro.utils.rng.as_generator` instead",
                )
                return
        if target == "random" or target.startswith("random."):
            # The stdlib module: every function shares one hidden global
            # stream, so even `random.seed` is a reproducibility hazard.
            yield self.finding(
                source,
                node,
                f"call into the stdlib `random` module (`{target}`) uses a "
                "hidden global stream; use a seeded numpy Generator",
            )
            return
        if target == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    source,
                    node,
                    "`default_rng()` without a seed draws OS entropy and is "
                    "unreproducible; pass a seed or SeedSequence",
                )
            elif len(node.args) == 1 and _is_none(node.args[0]):
                yield self.finding(
                    source,
                    node,
                    "`default_rng(None)` is an explicit unseeded generator; "
                    "pass a real seed or SeedSequence",
                )
