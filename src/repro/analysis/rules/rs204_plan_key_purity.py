"""RS204 — plan-key hashing must be transitively pure.

The plan cache (PR 3) is only correct if
:mod:`repro.service.keys` is a pure function of the request: two
identical requests must hash to the same key on any host, at any time,
in any process.  A ``time.time()`` three calls deep, an
``os.environ`` read, an RNG draw, or a mutation of module state inside
the hashing closure all silently turn the content-addressed cache into a
time/host-dependent one — hits become misses (wasted recompute) or,
worse, misses become hits (stale plans served as fresh).

This rule takes every function defined in a ``service/keys.py`` module
as a purity root, closes over the call graph (direct + callback edges;
name-based CHA edges are followed so ``distribution.params()`` reaches
every registered distribution's ``params`` — but not through
container-style method names like ``.get``/``.items``, which would drag
in unrelated classes), and flags any reachable call into a
nondeterminism source, plus any ``global`` mutation.
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional

from repro.analysis.finding import Finding
from repro.analysis.graph.callgraph import COMMON_METHOD_NAMES, CallGraph
from repro.analysis.graph.symbols import FunctionSummary
from repro.analysis.rules import register
from repro.analysis.rules.base import GraphRule

__all__ = ["PlanKeyPurityRule"]

#: Canonical prefixes whose calls make a hash nondeterministic.
_IMPURE_PREFIXES = (
    "time.",
    "random.",
    "numpy.random.",
    "uuid.",
    "secrets.",
    "os.environ",
)

_IMPURE_EXACT = frozenset(
    {
        "os.getenv",
        "os.urandom",
        "open",
        "input",
    }
)

#: datetime constructors that read the wall clock.
_CLOCK_TAILS = frozenset({"now", "today", "utcnow"})


def _is_keys_module(path: str) -> bool:
    return PurePosixPath(path).parts[-2:] == ("service", "keys.py")


def _impure_label(canonical: str) -> Optional[str]:
    if canonical in _IMPURE_EXACT:
        return canonical
    for prefix in _IMPURE_PREFIXES:
        if canonical == prefix.rstrip(".") or canonical.startswith(prefix):
            return canonical
    head, _, tail = canonical.rpartition(".")
    if tail in _CLOCK_TAILS and "datetime" in head:
        return canonical
    return None


@register
class PlanKeyPurityRule(GraphRule):
    rule_id = "RS204"
    summary = (
        "impure call (clock/env/RNG/IO) or global mutation reachable from "
        "plan-key hashing"
    )

    def check_graph(self, graph: CallGraph) -> Iterator[Finding]:
        roots = [
            fn
            for fn in graph.functions.values()
            if _is_keys_module(fn.path)
        ]
        if not roots:
            return

        # BFS recording which root reaches each function, skipping CHA
        # edges through container-style method names (see module doc).
        via: Dict[str, str] = {}
        frontier: List[str] = []
        for root in roots:
            via[root.qname] = root.qname
            frontier.append(root.qname)
        while frontier:
            current = frontier.pop(0)
            for edge in graph.out_edges.get(current, ()):
                if (
                    edge.kind == "cha"
                    and edge.callee.rsplit(".", 1)[-1] in COMMON_METHOD_NAMES
                ):
                    continue
                if edge.callee not in via:
                    via[edge.callee] = via[current]
                    frontier.append(edge.callee)

        for qname, root in sorted(via.items()):
            fn = graph.functions.get(qname)
            if fn is None:
                continue
            yield from self._check_function(graph, fn, root)

    def _check_function(
        self, graph: CallGraph, fn: FunctionSummary, root: str
    ) -> Iterator[Finding]:
        suffix = (
            ""
            if fn.qname == root
            else f" (reached from plan-key root `{root}`)"
        )
        if fn.has_global_write is not None:
            yield self.graph_finding(
                fn.path,
                fn.has_global_write,
                1,
                f"`global` mutation inside `{fn.qname}`{suffix}; plan-key "
                "hashing must not depend on or modify module state",
            )
        for site in fn.calls:
            if site.dotted is None:
                continue
            canonical = graph.canonical(fn.module, site.dotted)
            label = _impure_label(canonical)
            if label is not None:
                yield self.graph_finding(
                    fn.path,
                    site.lineno,
                    site.col,
                    f"impure call `{label}` in `{fn.qname}`{suffix}; plan "
                    "keys must be deterministic functions of the request",
                )
