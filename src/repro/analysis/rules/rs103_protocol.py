"""RS103 — Distribution protocol conformance for every registered law.

``repro.distributions.registry.DISTRIBUTION_FACTORIES`` is the service
boundary: the planner instantiates laws by name, the plan-cache key hashes
``params()``, and the Monte-Carlo kernel calls ``rvs``.  A registered class
missing part of the protocol — or redefining it with a different signature
— fails at request time, in production, instead of at lint time.

The rule finds the registry module (``.../distributions/registry.py``),
reads the ``DISTRIBUTION_FACTORIES`` dict literal, and checks each
registered class *across its scanned inheritance chain* for the full
protocol with base-compatible signatures:

==================  ========================================
method              positional args (after ``self``)
==================  ========================================
``support``         0
``pdf``             1  (``t``)
``cdf``             1  (``t``)
``sf``              1  (``t``)
``quantile``        1  (``q``)
``mean``            0
``var``             0
``rvs``             1  (``size``; ``seed`` may default)
``params``          0
==================  ========================================

``sf``/``mean``/``var``/``rvs`` are usually inherited from
:class:`repro.distributions.base.Distribution` — inheriting is conformant;
shadowing with a narrower signature is not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.finding import Finding, SourceFile
from repro.analysis.rules import register
from repro.analysis.rules.base import (
    ProjectRule,
    method_defs,
    positional_arity,
    walk_classes,
)

__all__ = ["DistributionProtocolRule"]

#: method -> positional argument count (excluding self) it must accept.
PROTOCOL: Dict[str, int] = {
    "support": 0,
    "pdf": 1,
    "cdf": 1,
    "sf": 1,
    "quantile": 1,
    "mean": 0,
    "var": 0,
    "rvs": 1,
    "params": 0,
}

_REGISTRY_SUFFIX = ("distributions", "registry.py")
_FACTORIES_NAME = "DISTRIBUTION_FACTORIES"


def _registry_entries(source: SourceFile) -> List[Tuple[str, ast.AST, str]]:
    """(law name, value node, class name) for each registry dict entry."""
    entries: List[Tuple[str, ast.AST, str]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == _FACTORIES_NAME for t in targets
        ):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Name)
            ):
                entries.append((key.value, val, val.id))
    return entries


class _ClassIndex:
    """Class name -> (ClassDef, defining SourceFile) over the scanned set."""

    def __init__(self, sources: Sequence[SourceFile]):
        self.classes: Dict[str, Tuple[ast.ClassDef, SourceFile]] = {}
        for source in sources:
            if source.tree is None:
                continue
            for cls in walk_classes(source.tree):
                # First definition wins; duplicate class names across the
                # tree are rare and not this rule's concern.
                self.classes.setdefault(cls.name, (cls, source))

    def mro(self, name: str, _seen: Optional[set] = None) -> List[Tuple[ast.ClassDef, SourceFile]]:
        """The class and its scanned ancestors, nearest first."""
        seen = _seen if _seen is not None else set()
        if name in seen or name not in self.classes:
            return []
        seen.add(name)
        cls, source = self.classes[name]
        chain = [(cls, source)]
        for base in cls.bases:
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name:
                chain.extend(self.mro(base_name, seen))
        return chain


def _signature_ok(fn: ast.FunctionDef, expected: int) -> bool:
    required, total = positional_arity(fn)
    if fn.args.vararg is not None:
        return required <= expected
    return required <= expected <= total


@register
class DistributionProtocolRule(ProjectRule):
    rule_id = "RS103"
    summary = "registered distribution missing or mis-declaring the protocol"

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        registries = [
            s
            for s in sources
            if s.tree is not None and s.parts[-2:] == _REGISTRY_SUFFIX
        ]
        if not registries:
            return
        index = _ClassIndex(sources)
        for registry in registries:
            for law, value_node, class_name in _registry_entries(registry):
                chain = index.mro(class_name)
                if not chain:
                    continue  # class defined outside the scanned tree
                yield from self._check_law(law, class_name, chain)

    def _check_law(
        self,
        law: str,
        class_name: str,
        chain: List[Tuple[ast.ClassDef, SourceFile]],
    ) -> Iterator[Finding]:
        cls_node, cls_source = chain[0]
        resolved: Dict[str, Tuple[ast.FunctionDef, SourceFile]] = {}
        for cls, source in chain:
            for name, fn in method_defs(cls).items():
                resolved.setdefault(name, (fn, source))
        for method, expected in PROTOCOL.items():
            entry = resolved.get(method)
            if entry is None:
                yield self.finding(
                    cls_source,
                    cls_node,
                    f"registered law '{law}' ({class_name}) does not define "
                    f"or inherit `{method}` — the Distribution protocol "
                    "requires it",
                )
                continue
            fn, fn_source = entry
            if not _signature_ok(fn, expected):
                arg_word = "argument" if expected == 1 else "arguments"
                yield self.finding(
                    fn_source,
                    fn,
                    f"`{class_name}.{method}` must accept exactly "
                    f"{expected} positional {arg_word} after self "
                    "(base-protocol signature)",
                )
