"""RS102 — ``==`` / ``!=`` between float-typed expressions.

The numerical core compares costs, quantiles, and thresholds that come out
of quadrature and recurrences; exact equality on those is almost always a
latent bug (`math.isclose` or an explicit tolerance is wanted).  The rule
is scoped to the numeric packages — ``core/``, ``strategies/``,
``distributions/`` — where float comparisons dominate.

Pure AST analysis cannot type expressions, so the rule fires only when an
operand is *provably* float-like: a float literal, ``float(...)``,
``math.inf``/``math.nan``-style constants, or unary minus on one of those.
Exact comparisons that are genuinely intended (support endpoints,
parameter sentinels like the Pareto ``alpha == 1`` closed-form switch)
carry an inline ``# repro-lint: disable=RS102 -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding, SourceFile
from repro.analysis.rules import register
from repro.analysis.rules.base import ImportMap, Rule, contains_parts

__all__ = ["FloatEqualityRule"]

_FLOAT_CONST_ATTRS = {
    "math.inf",
    "math.nan",
    "math.pi",
    "math.e",
    "math.tau",
    "numpy.inf",
    "numpy.nan",
    "numpy.pi",
    "numpy.e",
}


def _is_float_like(node: ast.AST, imports: ImportMap) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_like(node.operand, imports)
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
        )
    if isinstance(node, ast.Attribute):
        return imports.resolve(node) in _FLOAT_CONST_ATTRS
    return False


@register
class FloatEqualityRule(Rule):
    rule_id = "RS102"
    summary = "float equality comparison (== / != on float-typed operands)"

    SCOPE = ("core", "strategies", "distributions")

    def applies_to(self, source: SourceFile) -> bool:
        return contains_parts(source.parts, self.SCOPE)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_float_like(left, imports) or _is_float_like(right, imports):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        source,
                        node,
                        f"`{symbol}` on a float-typed operand; use "
                        "math.isclose / an explicit tolerance, or disable "
                        "with a reason if the exact comparison is intended",
                    )
                    break  # one finding per comparison chain is enough
