"""RS106 — metric-name drift.

``docs/SERVICE.md`` documents the ``/metrics`` payload, dashboards key on
the counter names, and the CI round-trip asserts on them — so a typo'd
metric name (``plancache.hit`` for ``plancache.hits``) is not a style
problem, it is a silently-empty time series.

The canonical inventory lives in ``repro/observability/names.py`` as
module-level string constants plus ``DYNAMIC_PREFIXES`` (name families
built at runtime, e.g. ``server.responses.<status>``).  This rule finds
every name handed to the metric APIs (``inc`` / ``set_gauge`` /
``observe`` / ``timer`` / ``counter`` / ``gauge`` / ``histogram`` /
``observe_timer`` on a ``metrics`` receiver) across the scanned tree and
checks it against that inventory:

* string literals must be canonical (or extend a dynamic prefix);
* f-strings must extend a declared dynamic prefix;
* ``names.FOO`` references must exist in the names module;
* anything else (a runtime-built name) is flagged — route it through a
  constant or register a prefix.

If the names module is not part of the scanned set the rule stays silent:
there is nothing to check against.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.finding import Finding, SourceFile
from repro.analysis.rules import register
from repro.analysis.rules.base import ImportMap, ProjectRule, dotted_name

__all__ = ["MetricNameRule"]

_NAMES_SUFFIX = ("observability", "names.py")
_NAMES_MODULE = "repro.observability.names"
_METRIC_APIS = {
    "inc",
    "set_gauge",
    "observe",
    "timer",
    "counter",
    "gauge",
    "histogram",
    "observe_timer",
}


def _load_inventory(source: SourceFile) -> Tuple[Set[str], List[str]]:
    """(canonical names, dynamic prefixes) from a parsed names module."""
    names: Set[str] = set()
    prefixes: List[str] = []
    for node in source.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            continue
        value = node.value
        if "DYNAMIC_PREFIXES" in targets and isinstance(
            value, (ast.Tuple, ast.List)
        ):
            prefixes = [
                el.value
                for el in value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
        elif isinstance(value, ast.Constant) and isinstance(value.value, str):
            names.add(value.value)
    return names, prefixes


def _constant_names(source: SourceFile) -> Set[str]:
    """Constant identifiers (``FOO``) defined at names-module top level."""
    out: Set[str] = set()
    for node in source.tree.body:
        if isinstance(node, ast.Assign):
            out.update(t.id for t in node.targets if isinstance(t, ast.Name))
    return out


def _is_metrics_receiver(func: ast.AST, imports: ImportMap) -> bool:
    if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_APIS:
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    resolved = imports.resolve(func.value)
    return receiver == "metrics" or (
        resolved is not None and resolved.endswith("observability.metrics")
    )


@register
class MetricNameRule(ProjectRule):
    rule_id = "RS106"
    summary = "metric name not in the canonical repro/observability/names.py"

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        names_modules = [
            s
            for s in sources
            if s.tree is not None and s.parts[-2:] == _NAMES_SUFFIX
        ]
        if not names_modules:
            return
        canonical: Set[str] = set()
        prefixes: List[str] = []
        constants: Set[str] = set()
        for module in names_modules:
            mod_names, mod_prefixes = _load_inventory(module)
            canonical |= mod_names
            prefixes += mod_prefixes
            constants |= _constant_names(module)
        for source in sources:
            if source.tree is None or source.parts[-2:] == _NAMES_SUFFIX:
                continue
            yield from self._check_file(source, canonical, prefixes, constants)

    def _check_file(
        self,
        source: SourceFile,
        canonical: Set[str],
        prefixes: List[str],
        constants: Set[str],
    ) -> Iterator[Finding]:
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not _is_metrics_receiver(node.func, imports):
                continue
            for name_node in self._name_candidates(node.args[0]):
                message = self._judge(
                    name_node, imports, canonical, prefixes, constants
                )
                if message:
                    yield self.finding(source, node, message)
                    break  # one finding per call site

    @staticmethod
    def _name_candidates(arg: ast.AST) -> List[ast.AST]:
        """Unfold conditional expressions into their possible name values."""
        if isinstance(arg, ast.IfExp):
            return [arg.body, arg.orelse]
        return [arg]

    def _judge(
        self,
        arg: ast.AST,
        imports: ImportMap,
        canonical: Set[str],
        prefixes: List[str],
        constants: Set[str],
    ) -> Optional[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if name in canonical or any(name.startswith(p) for p in prefixes):
                return None
            return (
                f"metric name '{name}' is not declared in "
                "repro/observability/names.py — add it there (or extend a "
                "DYNAMIC_PREFIXES family)"
            )
        if isinstance(arg, ast.JoinedStr):
            # f"{names.SOME_PREFIX}{suffix}" — built from a declared
            # constant, canonical by construction.
            first = arg.values[0] if arg.values else None
            if isinstance(first, ast.FormattedValue):
                head = self._judge(
                    first.value, imports, canonical, prefixes, constants
                )
                if head is None:
                    return None
            static = ""
            for part in arg.values:
                if isinstance(part, ast.Constant) and isinstance(part.value, str):
                    static += part.value
                else:
                    break
            if static and any(
                static.startswith(p) or p.startswith(static) for p in prefixes
            ):
                return None
            return (
                f"dynamically built metric name (f-string starting "
                f"'{static}') matches no DYNAMIC_PREFIXES entry in "
                "repro/observability/names.py"
            )
        resolved = imports.resolve(arg)
        if resolved is not None:
            if resolved.startswith(_NAMES_MODULE + "."):
                constant = resolved[len(_NAMES_MODULE) + 1:]
                if constant in constants:
                    return None
                return (
                    f"metric-name constant '{constant}' does not exist in "
                    "repro/observability/names.py"
                )
            head = resolved.split(".", 1)[0]
            if head in constants:
                # `from repro.observability.names import FOO` resolves to
                # the names module only via the alias map; a bare constant
                # name that the names module defines is accepted.
                return None
        return (
            "metric name is neither a canonical literal nor a "
            "names.py constant; route it through "
            "repro/observability/names.py"
        )
