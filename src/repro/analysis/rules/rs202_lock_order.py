"""RS202 — global lock-acquisition ordering and blocking-under-lock.

RS104 enforces *lexical* lock discipline inside one class; this rule
builds the global lock-acquisition graph across the ``service`` /
``observability`` / ``resilience`` subsystems and reports:

* **cycles** — lock A is (somewhere) acquired while B is held and B
  (somewhere else, possibly through a chain of calls) while A is held:
  the classic two-thread deadlock;
* **non-reentrant re-acquisition** — ``self._lock`` taken again on a call
  path that already holds it, when the lock is a plain ``Lock`` (an
  ``RLock`` self-edge is fine);
* **blocking calls under a lock** — ``time.sleep``, file I/O
  (``open`` / ``os.replace`` / ``Path.write_text`` …), or a pool
  ``map``/``submit`` executed while holding a lock serializes every other
  thread behind a slow operation.

Edges come from two sources: lexically nested ``with`` blocks, and the
*call closure* — a function invoked while a lock is held transitively
acquires whatever its callees acquire.  The closure follows ``direct``
and ``ref`` (callback) edges only; name-based CHA edges are deliberately
excluded, because ``self._data.get(...)`` textually matching some
project class's ``get`` method must not fabricate a deadlock.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.finding import Finding
from repro.analysis.graph.callgraph import CallGraph
from repro.analysis.graph.symbols import FunctionSummary
from repro.analysis.rules import register
from repro.analysis.rules.base import GraphRule, contains_parts

__all__ = ["LockOrderRule", "SCOPE"]

SCOPE = ("service", "observability", "resilience")

#: Canonical dotted names that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "os.replace",
        "os.rename",
        "os.fsync",
        "os.remove",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Attribute tails that mean file I/O on an opaque receiver (Path objects).
_BLOCKING_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Execution-backend methods that fan work out (and wait on) worker pools.
_POOL_METHODS = frozenset({"map", "submit"})


def _in_scope(fn: FunctionSummary) -> bool:
    from pathlib import PurePosixPath

    return contains_parts(PurePosixPath(fn.path).parts, SCOPE)


@register
class LockOrderRule(GraphRule):
    rule_id = "RS202"
    summary = (
        "lock-order cycle, non-reentrant re-acquisition, or blocking call "
        "while holding a lock"
    )

    def check_graph(self, graph: CallGraph) -> Iterator[Finding]:
        scoped = [fn for fn in graph.functions.values() if _in_scope(fn)]
        acquired_in_closure = self._closure_acquisitions(graph, scoped)

        # lock graph: edge held -> acquired, with one witness site each.
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

        def add(held: str, acquired: str, path: str, line: int) -> None:
            edges.setdefault((held, acquired), (path, line))

        for fn in scoped:
            for acq in fn.lock_acquisitions:
                for held in acq.held:
                    add(held, acq.lock_id, fn.path, acq.lineno)
            for site in fn.calls:
                if not site.locks_held:
                    continue
                for edge in graph.out_edges.get(fn.qname, ()):
                    if edge.site is not site or edge.kind == "cha":
                        continue
                    for lock in acquired_in_closure.get(edge.callee, ()):
                        for held in site.locks_held:
                            add(held, lock, fn.path, site.lineno)

        yield from self._self_edges(graph, edges)
        yield from self._cycles(edges)
        yield from self._blocking(graph, scoped)

    # -- transitive acquisitions ----------------------------------------
    def _closure_acquisitions(
        self, graph: CallGraph, scoped: List[FunctionSummary]
    ) -> Dict[str, Set[str]]:
        """lock ids acquired by each function or anything it (transitively)
        calls — direct + callback edges only, CHA excluded."""
        direct: Dict[str, Set[str]] = {}
        for fn in graph.functions.values():
            if fn.lock_acquisitions:
                direct[fn.qname] = {a.lock_id for a in fn.lock_acquisitions}
        closure: Dict[str, Set[str]] = {
            q: set(locks) for q, locks in direct.items()
        }
        # Propagate up the reverse edges to a fixpoint (graphs are small).
        changed = True
        while changed:
            changed = False
            for qname, locks in list(closure.items()):
                for edge in graph.in_edges.get(qname, ()):
                    if edge.kind == "cha":
                        continue
                    mine = closure.setdefault(edge.caller, set())
                    before = len(mine)
                    mine |= locks
                    if len(mine) != before:
                        changed = True
        return closure

    # -- findings --------------------------------------------------------
    def _reentrant(self, graph: CallGraph, lock_id: str) -> Optional[bool]:
        owner, leaf = lock_id.rsplit(".", 1)
        if leaf == "_lock":
            cls = graph.classes.get(owner)
            return cls.lock_reentrant if cls is not None else None
        module = graph.modules.get(owner)
        if module is not None and leaf in module.module_locks:
            return module.module_locks[leaf]
        return None

    def _self_edges(
        self, graph: CallGraph, edges: Dict[Tuple[str, str], Tuple[str, int]]
    ) -> Iterator[Finding]:
        for (held, acquired), (path, line) in sorted(edges.items()):
            if held != acquired:
                continue
            if self._reentrant(graph, held) is False:
                yield self.graph_finding(
                    path,
                    line,
                    1,
                    f"`{held}` is re-acquired on a path that already holds "
                    "it, but it is a plain (non-reentrant) Lock — this "
                    "self-deadlocks; use an RLock or restructure",
                )

    def _cycles(
        self, edges: Dict[Tuple[str, str], Tuple[str, int]]
    ) -> Iterator[Finding]:
        adjacency: Dict[str, Set[str]] = {}
        for held, acquired in edges:
            if held != acquired:
                adjacency.setdefault(held, set()).add(acquired)

        reported: Set[Tuple[str, ...]] = set()
        for start in sorted(adjacency):
            cycle = self._find_cycle(adjacency, start)
            if cycle is None:
                continue
            canon = tuple(sorted(set(cycle)))
            if canon in reported:
                continue
            reported.add(canon)
            witness = edges[(cycle[0], cycle[1])]
            order = " -> ".join((*cycle, cycle[0]))
            yield self.graph_finding(
                witness[0],
                witness[1],
                1,
                f"lock-order cycle {order}: two threads taking these locks "
                "in opposite orders can deadlock; impose a global "
                "acquisition order",
            )

    @staticmethod
    def _find_cycle(
        adjacency: Dict[str, Set[str]], start: str
    ) -> Optional[List[str]]:
        """Shortest cycle through ``start`` (BFS back to the start node)."""
        parents: Dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            node = queue.pop(0)
            for nxt in sorted(adjacency.get(node, ())):
                if nxt == start:
                    path = [node]
                    while node != start:
                        node = parents[node]
                        path.append(node)
                    return list(reversed(path))
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = node
                    queue.append(nxt)
        return None

    def _blocking(
        self, graph: CallGraph, scoped: List[FunctionSummary]
    ) -> Iterator[Finding]:
        for fn in scoped:
            for site in fn.calls:
                if not site.locks_held:
                    continue
                label = self._blocking_label(graph, fn, site)
                if label is None:
                    continue
                lock = site.locks_held[-1]
                yield self.graph_finding(
                    fn.path,
                    site.lineno,
                    site.col,
                    f"blocking call `{label}` while holding `{lock}`; "
                    "every other thread contending on the lock stalls "
                    "behind it — move the slow operation outside the "
                    "critical section",
                )

    def _blocking_label(
        self, graph: CallGraph, fn: FunctionSummary, site
    ) -> Optional[str]:
        if site.dotted is not None:
            canonical = graph.canonical(fn.module, site.dotted)
            if canonical in _BLOCKING_CALLS:
                return canonical
            tail = canonical.rsplit(".", 1)[-1]
            if tail in _BLOCKING_ATTRS:
                return tail
        elif site.attr in _BLOCKING_ATTRS:
            return site.attr
        # Pool fan-out: the resolved target is an execution-backend method.
        for edge in graph.out_edges.get(fn.qname, ()):
            if edge.site is not site or edge.kind == "ref":
                continue
            owner, _, method = edge.callee.rpartition(".")
            if method in _POOL_METHODS and ".pool" in owner:
                return f"{owner.rsplit('.', 1)[-1]}.{method}"
        return None
