"""Rule base classes and shared AST helpers.

Two rule kinds:

* :class:`Rule` — runs once per file against its AST (most rules);
* :class:`ProjectRule` — runs once against *all* parsed files, for
  cross-module checks (RS103 protocol conformance against the distribution
  registry, RS106 metric names against the canonical names module).

Both yield :class:`~repro.analysis.finding.Finding` objects; the engine
owns suppression and baseline handling, so rules stay pure functions of
the AST.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.finding import Finding, SourceFile

__all__ = [
    "Rule",
    "ProjectRule",
    "GraphRule",
    "dotted_name",
    "ImportMap",
    "walk_classes",
    "method_defs",
]


class Rule(abc.ABC):
    """A per-file check.  Subclasses set ``rule_id``/``summary`` and
    implement :meth:`check`; ``applies_to`` scopes the rule to parts of the
    tree (path segments relative to the analysis root)."""

    rule_id: str = "RS000"
    summary: str = ""

    def applies_to(self, source: SourceFile) -> bool:
        return True

    @abc.abstractmethod
    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """A whole-project check; :meth:`check_project` sees every parsed file."""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())  # pragma: no cover - project rules use check_project

    @abc.abstractmethod
    def check_project(
        self, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:
        """Yield findings across the full file set."""


class GraphRule(ProjectRule):
    """A rule over the project call graph (the RS2xx pack).

    The engine builds one :class:`~repro.analysis.graph.CallGraph` per run
    and hands it to every graph rule; :meth:`check_project` is kept as a
    fallback so a graph rule still works when invoked directly against a
    source list (it builds its own graph).
    """

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        from repro.analysis.graph import build_graph

        return self.check_graph(build_graph(list(sources)))

    @abc.abstractmethod
    def check_graph(self, graph) -> Iterator[Finding]:
        """Yield findings from the resolved call graph."""

    def graph_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id, path=path, line=line, col=col, message=message
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``Name``/``Attribute`` chains to ``"a.b.c"`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias -> canonical dotted module/object name for one module.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng as rng`` maps ``rng -> numpy.random.default_rng``.  Rules
    resolve attribute chains through this map so aliasing cannot hide a
    flagged call.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # `import a.b` binds local name `a` to package `a`.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, through import aliases."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical_head = self.aliases.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head

    def resolve_strict(self, node: ast.AST) -> Optional[str]:
        """Like :meth:`resolve`, but only for names actually imported —
        a local variable that shadows a module name resolves to ``None``."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical_head = self.aliases.get(head)
        if canonical_head is None:
            return None
        return f"{canonical_head}.{rest}" if rest else canonical_head


def walk_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def method_defs(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly defined (non-nested) methods of a class, by name."""
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def positional_arity(fn: ast.FunctionDef) -> Tuple[int, int]:
    """(required, total) positional parameter counts, excluding ``self``."""
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    total = len(positional)
    required = total - len(args.defaults)
    return max(0, required), total


def contains_parts(parts: Iterable[str], wanted: Iterable[str]) -> bool:
    """True when any path segment is in ``wanted`` (rule scoping helper)."""
    wanted_set = set(wanted)
    return any(part in wanted_set for part in parts)
