"""RS104 — lock discipline in the concurrent packages.

The serving layer (``service/``) and the metrics layer (``observability/``)
are the only packages running user requests on multiple threads.  Their
convention: an object that owns a ``_lock`` protects *all* of its mutable
attribute state with it.  An attribute assignment outside a
``with self._lock:`` block is either a forgotten lock (a data race the GIL
will hide until it doesn't) or state that should not live on a locked
object.

The rule is per-class and purely lexical:

* a class "owns a lock" when any of its methods assigns ``self._lock``;
* in every method except ``__init__``/``__new__`` (construction happens
  before the object is shared), an assignment/augmented assignment/delete
  whose target is ``self.<attr>`` must be nested inside a ``with`` whose
  context expression mentions ``self._lock``.

Lock-free designs (immutable objects, contextvars) simply never assign
``self._lock`` and are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.finding import Finding, SourceFile
from repro.analysis.rules import register
from repro.analysis.rules.base import Rule, contains_parts, walk_classes

__all__ = ["LockDisciplineRule"]

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}


def _is_self_attr(node: ast.AST, attr: str = "") -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (not attr or node.attr == attr)
    )


def _assigns_self_lock(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if any(_is_self_attr(t, "_lock") for t in node.targets):
                return True
        elif isinstance(node, ast.AnnAssign):
            if _is_self_attr(node.target, "_lock"):
                return True
    return False


def _with_holds_lock(node: ast.With) -> bool:
    return any(
        _is_self_attr(item.context_expr, "_lock")
        or (
            isinstance(item.context_expr, ast.Call)
            and any(
                _is_self_attr(arg, "_lock") for arg in item.context_expr.args
            )
        )
        for item in node.items
    )


@register
class LockDisciplineRule(Rule):
    rule_id = "RS104"
    summary = "attribute mutation of a lock-owning object outside its lock"

    SCOPE = ("service", "observability", "resilience")

    def applies_to(self, source: SourceFile) -> bool:
        return contains_parts(source.parts, self.SCOPE)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for cls in walk_classes(source.tree):
            methods = [
                item
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            if not any(_assigns_self_lock(m) for m in methods):
                continue
            for method in methods:
                if method.name in _CONSTRUCTORS:
                    continue
                yield from self._check_method(source, cls, method)

    def _check_method(
        self, source: SourceFile, cls: ast.ClassDef, method: ast.AST
    ) -> Iterator[Finding]:
        # Walk with an explicit stack so mutations inside `with self._lock:`
        # subtrees are skipped wholesale (nested defs keep being checked:
        # a closure mutating self still races).
        stack: List[ast.AST] = list(ast.iter_child_nodes(method))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.With) and _with_holds_lock(node):
                continue
            mutated = self._mutated_attr(node)
            if mutated is not None and mutated != "_lock":
                yield self.finding(
                    source,
                    node,
                    f"`{cls.name}.{method.name}` mutates `self.{mutated}` "
                    f"outside `with self._lock:` — {cls.name} owns a lock, "
                    "so shared state must be mutated under it",
                )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _mutated_attr(node: ast.AST):
        def first_self_attr(targets):
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    found = first_self_attr(target.elts)
                    if found is not None:
                        return found
                elif isinstance(target, ast.Starred):
                    if _is_self_attr(target.value):
                        return target.value.attr
                elif _is_self_attr(target):
                    return target.attr
            return None

        if isinstance(node, ast.Assign):
            return first_self_attr(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return first_self_attr([node.target])
        if isinstance(node, ast.Delete):
            return first_self_attr(node.targets)
        return None
