"""RS201 — seed provenance must survive every path from an MC entry point.

The bit-identity guarantees of PRs 3/6/7 (``jobs=1`` equals ``jobs=N``
equals the seed path) hold only if every function on a call path from a
seeded Monte-Carlo entry point down to an actual RNG draw threads the
seed / :class:`~numpy.random.SeedSequence` / Generator through.  RS101
catches unseeded draws *per file*; this rule walks the call graph so a
helper three modules away cannot quietly call ``default_rng()`` and break
replays only when some backend happens to route through it.

Two findings:

* an **unseeded RNG construction or legacy-global draw** inside any
  function reachable from a seeded entry point (``monte_carlo_*``,
  ``*monte_carlo*`` including ``spot_monte_carlo_cost``, ``batch_*``
  kernels) — reachability includes callback edges, so rung evaluators
  handed to ``run_ladder`` and chunk tasks handed to ``backend.map`` are
  covered;
* a **dropped seed**: a call that omits a callee's ``seed=None``-style
  parameter even though seed provenance is in scope at the caller — the
  callee will silently fall back to fresh entropy.

``utils/rng.py`` is exempt as the sanctioned seed-plumbing module, same
as RS101.
"""

from __future__ import annotations

import fnmatch
from typing import Iterator, List, Set, Tuple

from repro.analysis.finding import Finding
from repro.analysis.graph.callgraph import CallGraph
from repro.analysis.graph.symbols import CallSite, FunctionSummary, is_seedish_name
from repro.analysis.rules import register
from repro.analysis.rules.base import GraphRule

__all__ = ["SeedTaintRule", "ENTRY_PATTERNS"]

#: Function-name patterns that define seeded entry points (they must also
#: actually take a seed-like parameter to qualify).
ENTRY_PATTERNS = (
    "monte_carlo_*",
    "*monte_carlo*",
    "batch_*",
)

#: Parameters whose ``=None`` default means "fall back to fresh entropy".
_SEED_PARAM_NAMES = frozenset(
    {"seed", "rng", "generator", "seed_sequence", "ss"}
)

#: Seed-consuming constructors from :mod:`repro.utils.rng` — calling them
#: without a live seed argument defeats their purpose.
_RNG_PLUMBING = frozenset(
    {"as_generator", "spawn_generators", "spawn_seed_sequences"}
)

# Mirrors RS101: the modern numpy construction surface is fine to *name*;
# everything else under numpy.random is the legacy global-state API.
_SAFE_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _is_entry(fn: FunctionSummary) -> bool:
    if not fn.seedish_params:
        return False
    return any(fnmatch.fnmatch(fn.name, pat) for pat in ENTRY_PATTERNS)


def _is_rng_module(fn: FunctionSummary) -> bool:
    from pathlib import PurePosixPath

    return PurePosixPath(fn.path).parts[-2:] == ("utils", "rng.py")


@register
class SeedTaintRule(GraphRule):
    rule_id = "RS201"
    summary = (
        "seed provenance dropped on a path from a Monte-Carlo entry point "
        "to an RNG draw"
    )

    def check_graph(self, graph: CallGraph) -> Iterator[Finding]:
        entries = [fn for fn in graph.functions.values() if _is_entry(fn)]
        if not entries:
            return

        # BFS from each entry, remembering which entry first reached each
        # function (for the finding message).
        via: dict = {}
        frontier: List[str] = []
        for entry in entries:
            if entry.qname not in via:
                via[entry.qname] = entry.qname
                frontier.append(entry.qname)
        while frontier:
            current = frontier.pop(0)
            for edge in graph.out_edges.get(current, ()):
                if edge.callee not in via:
                    via[edge.callee] = via[current]
                    frontier.append(edge.callee)

        seen: Set[Tuple[str, int, str]] = set()
        for qname, entry_qname in via.items():
            fn = graph.functions.get(qname)
            if fn is None or _is_rng_module(fn):
                continue
            for site in fn.calls:
                for finding in self._check_site(graph, fn, site, entry_qname):
                    key = (finding.path, finding.line, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    # -- sinks -----------------------------------------------------------
    def _check_site(
        self,
        graph: CallGraph,
        fn: FunctionSummary,
        site: CallSite,
        entry: str,
    ) -> Iterator[Finding]:
        dotted = site.dotted
        if dotted is not None:
            canonical = graph.canonical(fn.module, dotted)
            yield from self._check_rng_sink(fn, site, canonical, entry)
        yield from self._check_dropped_seed(graph, fn, site, entry)

    def _unseeded_args(self, site: CallSite, fn: FunctionSummary) -> bool:
        """No live seed reaches this call: either no arguments at all, or
        only identifiers that carry no taint.  Constant-only arguments
        (``default_rng(12345)``) count as seeded — they are reproducible."""
        if site.has_splat:
            return False
        if any(is_seedish_name(kw) for kw in site.keywords):
            return False  # an explicit seed-ish keyword is a thread
        if site.num_args == 0 and not site.keywords:
            return True
        if site.arg_names and not site.passes_seedish(fn.tainted):
            return True
        return False

    def _check_rng_sink(
        self, fn: FunctionSummary, site: CallSite, canonical: str, entry: str
    ) -> Iterator[Finding]:
        tail = canonical.rsplit(".", 1)[-1]
        where = f"(reachable from seeded entry point `{entry}`)"
        if canonical.startswith("numpy.random.") and tail not in _SAFE_NP_RANDOM:
            yield self.graph_finding(
                fn.path,
                site.lineno,
                site.col,
                f"legacy global-state RNG `np.random.{tail}` on a seeded "
                f"Monte-Carlo path {where}; thread the caller's seed instead",
            )
            return
        if canonical == "random" or canonical.startswith("random."):
            yield self.graph_finding(
                fn.path,
                site.lineno,
                site.col,
                f"stdlib `random` call (`{canonical}`) on a seeded "
                f"Monte-Carlo path {where}; it draws from a hidden global "
                "stream the seed plumbing never touches",
            )
            return
        if canonical == "numpy.random.default_rng" and self._unseeded_args(
            site, fn
        ):
            yield self.graph_finding(
                fn.path,
                site.lineno,
                site.col,
                f"`default_rng()` without live seed provenance {where}; "
                "every replay of this entry point will diverge here",
            )
            return
        if tail in _RNG_PLUMBING and self._unseeded_args(site, fn):
            yield self.graph_finding(
                fn.path,
                site.lineno,
                site.col,
                f"`{tail}(...)` called without threading the entry point's "
                f"seed {where}; pass the seed/SeedSequence through",
            )

    # -- dropped seed ----------------------------------------------------
    def _check_dropped_seed(
        self,
        graph: CallGraph,
        fn: FunctionSummary,
        site: CallSite,
        entry: str,
    ) -> Iterator[Finding]:
        if site.has_splat or not fn.tainted:
            return
        if site.passes_seedish(fn.tainted):
            return
        for edge in graph.out_edges.get(fn.qname, ()):
            if edge.site is not site or edge.kind == "ref":
                continue
            callee = graph.functions.get(edge.callee)
            if callee is None:
                continue
            for param in callee.params:
                if (
                    param in _SEED_PARAM_NAMES
                    and callee.param_defaults_none.get(param)
                ):
                    yield self.graph_finding(
                        fn.path,
                        site.lineno,
                        site.col,
                        f"call to `{callee.name}` omits its `{param}` "
                        "parameter although seed provenance is in scope "
                        f"(reachable from `{entry}`); the callee defaults "
                        "to fresh entropy",
                    )
                    break
