"""RS105 — swallowed exceptions.

A bare ``except:`` or an over-broad ``except Exception:`` whose body
neither re-raises nor *uses* the caught error turns real failures —
numerical blowups, pickling errors in the process pool, broken sockets in
the server — into silent wrong answers.  In the retry paths
(``service/pool.py``) that means a task can "succeed" with a dropped
result; in a strategy it means a fallback silently replaces the paper's
heuristic.

The handler is compliant when any of:

* the caught exception is narrowed to specific types (not
  ``Exception``/``BaseException``);
* the body re-raises (``raise`` / ``raise X from err``);
* the body references the bound error name (logged, counted, chained,
  wrapped — the error is demonstrably not dropped).

An intentionally-broad guard keeps an inline
``# repro-lint: disable=RS105 -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding, SourceFile
from repro.analysis.rules import register
from repro.analysis.rules.base import Rule

__all__ = ["SwallowedExceptionRule"]

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler_type) -> bool:
    if handler_type is None:
        return True  # bare `except:`
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(el) for el in handler_type.elts)
    return False


def _uses_name(body, name: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False


def _reraises(body) -> bool:
    return any(
        isinstance(node, ast.Raise) for stmt in body for node in ast.walk(stmt)
    )


@register
class SwallowedExceptionRule(Rule):
    rule_id = "RS105"
    summary = "bare/over-broad except that drops the error"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _reraises(node.body):
                continue
            if node.name and _uses_name(node.body, node.name):
                continue
            what = "bare `except:`" if node.type is None else "`except Exception`"
            detail = (
                "binds the error but never uses it"
                if node.name
                else "does not bind or re-raise the error"
            )
            yield self.finding(
                source,
                node,
                f"{what} {detail}; narrow the exception types, re-raise, "
                "or record the error",
            )
