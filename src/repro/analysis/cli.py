"""``repro-lint`` — domain-aware static analysis for this repository.

Exit codes:

* ``0`` — no new findings (baselined/suppressed findings may exist);
* ``1`` — new findings (or parse errors, which are always new);
* ``2`` — usage error (bad path, unknown rule, corrupt baseline).

Typical invocations::

    repro-lint src/                        # gate: human output, exit code
    repro-lint src/ --format json -o r.json  # CI artifact
    repro-lint src/ --write-baseline       # adopt current findings as debt
    repro-lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import Report, render_json, render_text
from repro.analysis.rules import all_rules, rule_classes

__all__ = ["main", "run", "DEFAULT_GRAPH_NAME"]

#: Default artifact name for ``--graph`` with no argument.
DEFAULT_GRAPH_NAME = "repro-lint-graph.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based reproducibility lint: per-file rules RS101-RS106 "
            "plus call-graph dataflow rules RS201-RS204."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding is new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--graph",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_GRAPH_NAME,
        default=None,
        help=(
            "write the call graph (symbol table, edges, resolution stats, "
            f"findings) as JSON to FILE (default: {DEFAULT_GRAPH_NAME})"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print call-graph resolution statistics",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def _split_ids(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def _resolve_baseline_path(args) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    return str(default) if default.exists() or args.write_baseline else None


def _write_graph(path: str, graph, new, baselined) -> None:
    """The ``--graph`` artifact: call graph + findings, one JSON file."""
    import json

    doc = graph.to_json()
    doc["findings"] = {
        "new": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"repro-lint: call graph written to {path} "
        f"({graph.stats.n_edges} edge(s), "
        f"{graph.stats.resolution_rate:.1%} resolved)"
    )


def run(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in rule_classes().items():
            print(f"{rule_id}  {cls.summary}")
        return 0

    selected = _split_ids(args.select)
    ignored = set(_split_ids(args.ignore) or ())
    try:
        rules = all_rules(selected)
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    rules = [r for r in rules if r.rule_id not in ignored]

    want_graph = args.graph is not None or args.stats
    try:
        result = analyze_paths(args.paths, rules=rules, with_graph=want_graph)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.stats and result.graph is not None:
        s = result.graph.stats
        print(
            f"repro-lint: call graph: {s.n_modules} module(s), "
            f"{s.n_functions} function(s), {s.n_call_sites} call site(s), "
            f"{s.n_resolved} resolved / {s.n_external} external / "
            f"{s.n_dynamic} dynamic "
            f"({s.resolution_rate:.1%} intra-project resolution)"
        )

    fingerprinted = result.fingerprinted()
    baseline_path = _resolve_baseline_path(args)

    if args.write_baseline:
        path = baseline_path or DEFAULT_BASELINE_NAME
        n = Baseline().save(path, fingerprinted)
        print(f"repro-lint: wrote baseline with {n} entr(y/ies) to {path}")
        # Parse errors still fail the run: they cannot be baselined.
        return 1 if result.parse_errors else 0

    try:
        baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    except (ValueError, OSError) as exc:
        print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
        return 2

    new, baselined, stale = baseline.partition(fingerprinted)
    report = Report(
        n_files=result.n_files,
        new=new,
        baselined=baselined,
        suppressed=result.suppressed,
        stale_fingerprints=stale,
        baseline=baseline,
    )

    if args.graph is not None and result.graph is not None:
        _write_graph(args.graph, result.graph, new, baselined)

    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    if args.output:
        Path(args.output).write_text(
            rendered if rendered.endswith("\n") else rendered + "\n",
            encoding="utf-8",
        )
        # Keep the terminal verdict one line so CI logs stay scannable.
        print(
            f"repro-lint: report written to {args.output} "
            f"({len(report.new)} new finding(s))"
        )
    else:
        print(rendered)
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    return run(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
