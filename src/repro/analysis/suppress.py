"""Inline suppression comments: ``# repro-lint: disable=RS101,RS102``.

A suppression applies to findings *on the same physical line* as the
comment.  ``disable=all`` silences every rule on that line.  Comments are
located with :mod:`tokenize` rather than a regex over raw lines, so the
marker inside a string literal (say, in this module's own tests) never
counts as a suppression.

The project convention — enforced socially, not mechanically — is that an
inline disable always carries a reason after the rule list::

    if alpha == 1.0:  # repro-lint: disable=RS102 -- exact alpha=1 closed form
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

__all__ = ["parse_suppressions", "SUPPRESSION_PATTERN"]

SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)"
)


def _rule_ids(spec: str) -> Set[str]:
    return {part.strip() for part in spec.split(",") if part.strip()}


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids disabled on that line.

    Unparseable source yields no suppressions: the engine reports a parse
    error for the file anyway, and parse errors cannot be suppressed.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_PATTERN.search(tok.string)
            if match:
                line = tok.start[0]
                out.setdefault(line, set()).update(_rule_ids(match.group(1)))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}
    return out
