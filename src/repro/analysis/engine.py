"""The ``repro-lint`` engine: file collection, parsing, rule dispatch.

The engine owns everything the rules should not care about — walking
directories, parsing source, honoring inline suppressions, pairing each
finding with the fingerprint the baseline matches on — so rules stay pure
AST-to-findings functions.

Dependency-free by design (``ast`` + ``tokenize`` only): the linter has to
run in CI images and pre-commit hooks that install nothing beyond the
package itself.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.finding import PARSE_ERROR_RULE, Finding, SourceFile
from repro.analysis.graph import CallGraph, build_graph
from repro.analysis.rules import ProjectRule, Rule, all_rules
from repro.analysis.rules.base import GraphRule
from repro.analysis.suppress import parse_suppressions

__all__ = ["AnalysisResult", "analyze_paths", "collect_files", "load_source"]

_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
    ".venv",
    "venv",
}


@dataclass
class AnalysisResult:
    """Everything one run produced, before baseline policy is applied."""

    sources: List[SourceFile] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Built when any graph rule ran (or the caller asked for it).
    graph: Optional[CallGraph] = None

    @property
    def n_files(self) -> int:
        return len(self.sources)

    @property
    def parse_errors(self) -> List[Finding]:
        return [f for f in self.findings if f.rule == PARSE_ERROR_RULE]

    def fingerprinted(self) -> List[Tuple[Finding, str]]:
        """Findings paired with their baseline fingerprints."""
        by_path: Dict[str, SourceFile] = {s.path: s for s in self.sources}
        out = []
        for finding in self.findings:
            source = by_path.get(finding.path)
            line_text = source.line_text(finding.line) if source else ""
            out.append((finding, finding.fingerprint(line_text)))
        return out


def _display_path(path: Path) -> str:
    """cwd-relative posix path when the file is under cwd, else absolute."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return PurePosixPath(rel).as_posix()
    except ValueError:
        return PurePosixPath(path.resolve()).as_posix()


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    seen.setdefault((Path(dirpath) / name).resolve(), None)
    return sorted(seen)


def load_source(path: Path) -> SourceFile:
    """Read + parse one file; a syntax error becomes a parse-error source."""
    display = _display_path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return SourceFile(
            path=display, text="", tree=None, parse_error=str(exc)
        )
    try:
        tree = ast.parse(text, filename=str(path))
    except (SyntaxError, ValueError) as exc:
        return SourceFile(
            path=display, text=text, tree=None, parse_error=str(exc)
        )
    return SourceFile(
        path=display,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[Rule]] = None,
    with_graph: bool = False,
) -> AnalysisResult:
    """Lint ``paths`` with ``rules`` (default: every registered rule).

    Inline suppressions are applied here: suppressed findings land in
    ``result.suppressed``.  Parse errors are reported as rule ``E001`` and
    can be neither suppressed nor baselined.

    The call graph is built at most once per run — shared by every
    :class:`GraphRule` and kept on ``result.graph``.  ``with_graph=True``
    forces construction even when no graph rule is selected (the CLI's
    ``--graph``/``--stats`` artifacts need it).
    """
    rule_list = list(rules) if rules is not None else all_rules()
    result = AnalysisResult()
    for path in collect_files(paths):
        result.sources.append(load_source(path))

    for source in result.sources:
        if source.parse_error is not None:
            result.findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=source.path,
                    line=1,
                    col=1,
                    message=f"cannot parse file: {source.parse_error}",
                )
            )

    parsed = [s for s in result.sources if s.tree is not None]
    if with_graph or any(isinstance(r, GraphRule) for r in rule_list):
        result.graph = build_graph(parsed)

    raw: List[Finding] = []
    for rule in rule_list:
        if isinstance(rule, GraphRule):
            assert result.graph is not None
            raw.extend(rule.check_graph(result.graph))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(parsed))
        else:
            for source in parsed:
                if rule.applies_to(source):
                    raw.extend(rule.check(source))

    by_path = {s.path: s for s in result.sources}
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding.rule, finding.line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)

    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result
