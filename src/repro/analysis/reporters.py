"""Reporters: human-readable text and machine-readable JSON.

Both render the same :class:`Report` bundle, so the CI artifact (JSON) and
the terminal output can never disagree about what was found.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.finding import Finding

__all__ = ["Report", "render_text", "render_json"]


@dataclass
class Report:
    """One lint run, after suppression and baseline policy."""

    n_files: int
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_fingerprints: List[str] = field(default_factory=list)
    baseline: Baseline = field(default_factory=Baseline)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def by_rule(self, findings: Sequence[Finding]) -> Dict[str, int]:
        return dict(sorted(Counter(f.rule for f in findings).items()))


def render_text(report: Report) -> str:
    lines: List[str] = []
    for finding in report.new:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
    if report.baselined:
        lines.append("")
        lines.append(f"baselined (not failing, {len(report.baselined)}):")
        for finding in report.baselined:
            lines.append(
                f"  {finding.path}:{finding.line}: {finding.rule} "
                f"{finding.message}"
            )
    if report.stale_fingerprints:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(report.stale_fingerprints)}) — "
            "the debt shrank; rewrite with --write-baseline:"
        )
        for fp in report.stale_fingerprints:
            lines.append(f"  {fp} ({report.baseline.describe(fp)})")
    lines.append("")
    verdict = "FAIL" if report.new else "ok"
    lines.append(
        f"repro-lint: {report.n_files} file(s), {len(report.new)} new "
        f"finding(s), {len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed — {verdict}"
    )
    return "\n".join(lines).lstrip("\n")


def render_json(report: Report) -> str:
    doc = {
        "version": 1,
        "summary": {
            "files": report.n_files,
            "new": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "stale_baseline_entries": len(report.stale_fingerprints),
            "by_rule": report.by_rule(report.new),
            "exit_code": report.exit_code,
        },
        "findings": [f.to_dict() for f in report.new],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "stale_fingerprints": list(report.stale_fingerprints),
    }
    return json.dumps(doc, indent=2) + "\n"
