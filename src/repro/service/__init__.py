"""Planner-as-a-service: plan cache, execution backends, HTTP front end.

The first subsystem on the ROADMAP's serving/scale axis.  A reservation
plan is a pure function of (distribution params, cost model, strategy +
knobs, coverage), which makes it the ideal cacheable artifact; Monte-Carlo
validation and the experiment sweeps are embarrassingly parallel.  This
package turns those observations into a long-lived service:

- :mod:`repro.service.keys` — canonical content-hash cache keys built on the
  ``Distribution.params()`` protocol;
- :mod:`repro.service.plancache` — thread-safe LRU + TTL plan cache with a
  JSON warm-start snapshot;
- :mod:`repro.service.pool` — pluggable serial / thread / process execution
  backends with ordered map, per-task timeout, and bounded retry;
- :mod:`repro.service.planner` — the transport-free request/response core;
- :mod:`repro.service.journal` — crash-safe append-only shard journal
  (base snapshot + JSONL suffix, segment rotation, compaction);
- :mod:`repro.service.shard` — one journaled cache shard: store, worker
  process (``python -m repro.service.shard``), and RPC client;
- :mod:`repro.service.router` — consistent-hashing router
  (:class:`~repro.service.router.ShardedPlanCache`) and supervised
  :class:`~repro.service.router.ShardFleet` behind ``repro-serve
  --workers N``;
- :mod:`repro.service.server` — ``repro-serve``, a stdlib JSON/HTTP front
  end with admission control and graceful shutdown;
- :mod:`repro.service.client` — a stdlib client for that server.

Everything is dependency-free beyond the library's existing numpy/scipy.
"""

from repro.service.keys import (
    KEY_VERSION,
    canonical_json,
    cost_model_token,
    distribution_token,
    plan_key,
    strategy_token,
)
from repro.service.journal import JournalCorrupt, ShardJournal
from repro.service.plancache import PlanCache
from repro.service.planner import PlannerService, ServiceError
from repro.service.router import HashRing, ShardedPlanCache, ShardFleet
from repro.service.shard import (
    ShardClient,
    ShardError,
    ShardServer,
    ShardStore,
    ShardUnavailable,
)
from repro.service.pool import (
    BACKEND_KINDS,
    ExecutionBackend,
    PoolError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    chunk_sizes,
    get_backend,
)
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.server import PlanServer, serve

__all__ = [
    # keys
    "KEY_VERSION",
    "canonical_json",
    "distribution_token",
    "cost_model_token",
    "strategy_token",
    "plan_key",
    # cache
    "PlanCache",
    # sharded cache tier
    "JournalCorrupt",
    "ShardJournal",
    "ShardStore",
    "ShardServer",
    "ShardClient",
    "ShardError",
    "ShardUnavailable",
    "HashRing",
    "ShardedPlanCache",
    "ShardFleet",
    # pool
    "BACKEND_KINDS",
    "ExecutionBackend",
    "PoolError",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "chunk_sizes",
    "get_backend",
    # planner / transport
    "PlannerService",
    "ServiceError",
    "PlanServer",
    "serve",
    "ServiceClient",
    "ServiceHTTPError",
]
