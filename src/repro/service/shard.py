"""One plan-cache shard: journaled store, worker process, and RPC client.

A shard owns a contiguous arc of the consistent-hashing ring (see
:mod:`repro.service.router`) and keeps its slice of the plan cache both in
memory (:class:`~repro.service.plancache.PlanCache`) and on disk
(:class:`~repro.service.journal.ShardJournal`).  Three pieces live here:

* :class:`ShardStore` — cache + journal glued together: every ``put`` /
  ``invalidate`` / capacity eviction is journaled *before* the in-memory
  mutation, so a SIGKILL at any instant recovers to the exact committed
  state via ``base + journal`` replay (:meth:`ShardStore.recover`);
* :class:`ShardServer` + :func:`main` — the worker process:
  ``python -m repro.service.shard --shard-id K --data-dir D`` binds a
  localhost TCP port, replays its journal (per-shard warm start), prints a
  banner the parent parses, and answers newline-delimited JSON requests;
* :class:`ShardClient` — the router side of that protocol.  Every call
  passes the ``shard.rpc`` fault site; transport failures raise
  :class:`ShardUnavailable`, which the router treats as "fail this
  shard's keys over to the surviving ring".

The protocol is deliberately one JSON line per request over a fresh
connection — no framing state to corrupt, no pooled sockets to leak into
a killed worker, and trivially testable with in-process servers.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import socketserver
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.observability import metrics
from repro.observability import names
from repro.resilience import faults
from repro.service.journal import ShardJournal
from repro.service.plancache import PlanCache

__all__ = [
    "ShardError",
    "ShardUnavailable",
    "ShardStore",
    "ShardServer",
    "ShardClient",
    "serve_shard",
    "main",
]

MAX_LINE_BYTES = 16 * 1024 * 1024


class ShardError(RuntimeError):
    """The shard answered, but with an application-level error."""


class ShardUnavailable(RuntimeError):
    """The shard could not be reached (dead, wedged, or injected fault)."""


# ----------------------------------------------------------------------
# Journaled store
# ----------------------------------------------------------------------
class ShardStore:
    """A :class:`PlanCache` whose every mutation is journaled first.

    Ordering contract: the journal record is durable *before* the
    in-memory mutation happens.  A crash after the append but before the
    cache write replays to the post-mutation state — which is exactly what
    the caller was promised when the call returned (it never did).  A
    crash (or injected ``shard.journal.append`` fault) *during* the append
    leaves the cache untouched and the journal's committed prefix intact.
    """

    def __init__(
        self,
        directory: str,
        maxsize: int = 4096,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        max_segment_bytes: int = 1 << 20,
        max_segment_age_s: Optional[float] = None,
        fsync: bool = True,
    ):
        self.cache = PlanCache(maxsize=maxsize, ttl=ttl, clock=clock)
        self.journal = ShardJournal(
            directory,
            max_segment_bytes=max_segment_bytes,
            max_segment_age_s=max_segment_age_s,
            clock=clock,
            fsync=fsync,
        )
        self._clock = clock
        self._lock = threading.RLock()

    # -- reads ----------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        return self.cache.get(key)

    def keys(self) -> List[str]:
        return [str(entry["key"]) for entry in self.cache.entries()]

    # -- journaled mutations -------------------------------------------
    def put(
        self, key: str, payload: dict, created_at: Optional[float] = None
    ) -> None:
        with self._lock:
            stamp = self._clock() if created_at is None else float(created_at)
            self.journal.append(
                {"op": "put", "key": key, "created_at": stamp, "payload": payload}
            )
            evicted = self.cache.put(key, payload, created_at=stamp)
            for victim in evicted:
                # Record capacity evictions so replay removes exactly what
                # the live cache removed — recovered state stays
                # bit-identical to live state, never a resurrection.
                self.journal.append({"op": "evict", "key": victim})
            self._maybe_compact()

    def invalidate(self, key: str) -> bool:
        with self._lock:
            # Journal first: an invalidate for an absent key replays as a
            # no-op, but a removed key missing its record would resurrect.
            self.journal.append({"op": "invalidate", "key": key})
            removed = self.cache.invalidate(key)
            self._maybe_compact()
            return removed

    def clear(self) -> None:
        with self._lock:
            self.journal.append({"op": "clear"})
            self.cache.clear()

    # -- compaction / recovery -----------------------------------------
    def _maybe_compact(self) -> None:
        if self.journal.should_compact():
            self.compact()

    def compact(self) -> int:
        with self._lock:
            entries = self.cache.entries()
            self.journal.compact(entries)
            return len(entries)

    def recover(self) -> int:
        """Replay base + journal into the cache; returns entries restored.

        Mirrors ``PlanCache.load`` semantics: entries keep their original
        ``created_at`` (TTLs age across the crash) and already-expired
        entries are dropped.  Replay applies records through a plain dict,
        so capacity evictions recorded in the journal — not the LRU's
        mood during replay — decide what was removed.
        """
        with self._lock:
            result = self.journal.replay()
            restored = 0
            for key, (created_at, payload) in result.entries.items():
                if self.cache._expired(created_at):
                    continue
                self.cache.put(key, payload, created_at=created_at)
                restored += 1
            metrics.inc(names.SHARD_RECOVERED_ENTRIES, restored)
            return restored

    def close(self) -> None:
        self.journal.close()

    def stats(self) -> Dict[str, object]:
        stats = dict(self.cache.stats())
        stats["journal"] = self.journal.stats()
        return stats


# ----------------------------------------------------------------------
# Worker-process server
# ----------------------------------------------------------------------
class _ShardHandler(socketserver.StreamRequestHandler):
    server: "ShardServer"

    def handle(self) -> None:
        try:
            line = self.rfile.readline(MAX_LINE_BYTES)
            if not line.strip():
                return
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                response = self.server.dispatch(request)
            except Exception as exc:  # noqa: BLE001 - a shard must answer,
                # never die per-request: malformed input, an injected
                # journal fault, or a full disk all surface as a
                # structured error the router can fail over on.
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            self.wfile.write(
                json.dumps(response, separators=(",", ":")).encode("utf-8") + b"\n"
            )
        except OSError:
            pass  # peer vanished mid-exchange; nothing left to answer


class ShardServer(socketserver.ThreadingTCPServer):
    """Newline-JSON RPC server around one :class:`ShardStore`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        store: ShardStore,
        shard_id: int,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__((host, port), _ShardHandler)
        self.store = store
        self.shard_id = int(shard_id)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True, "shard": self.shard_id}
        if op == "get":
            payload = self.store.get(str(request["key"]))
            return {"ok": True, "hit": payload is not None, "payload": payload}
        if op == "put":
            payload = request["payload"]
            if not isinstance(payload, dict):
                raise ShardError("put payload must be an object")
            created_at = request.get("created_at")
            self.store.put(
                str(request["key"]),
                payload,
                created_at=None if created_at is None else float(created_at),
            )
            return {"ok": True}
        if op == "invalidate":
            removed = self.store.invalidate(str(request["key"]))
            return {"ok": True, "removed": removed}
        if op == "keys":
            return {"ok": True, "keys": self.store.keys()}
        if op == "clear":
            self.store.clear()
            return {"ok": True}
        if op == "compact":
            return {"ok": True, "entries": self.store.compact()}
        if op == "stats":
            stats = self.store.stats()
            stats["shard_id"] = self.shard_id
            stats["pid"] = os.getpid()
            return {"ok": True, "stats": stats}
        raise ShardError(f"unknown shard op {op!r}")


def serve_shard(
    store: ShardStore, shard_id: int, host: str = "127.0.0.1", port: int = 0
) -> ShardServer:
    """Bind a :class:`ShardServer` (``port=0`` picks an ephemeral port)."""
    return ShardServer(store, shard_id, host=host, port=port)


# ----------------------------------------------------------------------
# Router-side client
# ----------------------------------------------------------------------
class ShardClient:
    """One shard's endpoint as seen from the router.

    Every call passes the ``shard.rpc`` fault site and is counted; any
    transport-level failure — connection refused (dead worker), timeout
    (wedged worker), injected fault — raises :class:`ShardUnavailable`,
    the router's signal to fail the key over to the surviving ring.
    """

    def __init__(
        self, host: str, port: int, shard_id: int, timeout: float = 2.0
    ):
        self.host = host
        self.port = int(port)
        self.shard_id = int(shard_id)
        self.timeout = float(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ShardClient shard={self.shard_id} {self.host}:{self.port}>"

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        metrics.inc(names.SHARD_RPC_CALLS)
        try:
            faults.fire("shard.rpc")  # repro-lint: disable=RS203 -- the very next clause catches InjectedFault and re-raises ShardUnavailable, which ShardedPlanCache absorbs (bench + fail over); routes past that are name-based CHA conflating ShardClient.call with unrelated call() methods
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as conn:
                conn.sendall(
                    json.dumps(request, separators=(",", ":")).encode("utf-8")
                    + b"\n"
                )
                with conn.makefile("rb") as fh:
                    line = fh.readline(MAX_LINE_BYTES)
        except (OSError, faults.InjectedFault) as exc:
            metrics.inc(names.SHARD_RPC_FAILURES)
            raise ShardUnavailable(
                f"shard {self.shard_id} at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        if not line:
            metrics.inc(names.SHARD_RPC_FAILURES)
            raise ShardUnavailable(
                f"shard {self.shard_id} closed the connection without answering"
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            metrics.inc(names.SHARD_RPC_FAILURES)
            raise ShardUnavailable(
                f"shard {self.shard_id} sent a malformed response"
            ) from exc
        if not isinstance(response, dict) or not response.get("ok", False):
            error = ""
            if isinstance(response, dict):
                error = str(response.get("error", ""))
            raise ShardError(f"shard {self.shard_id} error: {error}")
        return response

    # -- typed helpers --------------------------------------------------
    def ping(self) -> bool:
        try:
            return bool(self.call({"op": "ping"}).get("pong", False))
        except (ShardUnavailable, ShardError):
            # Unreachable or misbehaving both read as "not healthy"; the
            # supervisor counts consecutive failures before acting.
            return False

    def get(self, key: str) -> Optional[dict]:
        response = self.call({"op": "get", "key": key})
        if not response.get("hit"):
            return None
        payload = response.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(
        self, key: str, payload: dict, created_at: Optional[float] = None
    ) -> None:
        self.call(
            {"op": "put", "key": key, "payload": payload, "created_at": created_at}
        )

    def invalidate(self, key: str) -> bool:
        return bool(self.call({"op": "invalidate", "key": key}).get("removed"))

    def stats(self) -> Dict[str, object]:
        stats = self.call({"op": "stats"}).get("stats", {})
        return stats if isinstance(stats, dict) else {}


# ----------------------------------------------------------------------
# Worker-process entry point
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-shard",
        description="One plan-cache shard worker: journaled store behind a "
        "localhost JSON RPC port (spawned by repro-serve --workers N).",
    )
    parser.add_argument("--shard-id", type=int, required=True)
    parser.add_argument(
        "--data-dir", required=True, help="journal + base directory for this shard"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--maxsize", type=int, default=4096)
    parser.add_argument("--ttl", type=float, default=None)
    parser.add_argument(
        "--journal-max-bytes",
        type=int,
        default=1 << 20,
        help="journal segment size that triggers compaction",
    )
    parser.add_argument(
        "--journal-max-age",
        type=float,
        default=None,
        help="journal segment age (seconds) that triggers compaction",
    )
    args = parser.parse_args(argv)

    store = ShardStore(
        args.data_dir,
        maxsize=args.maxsize,
        ttl=args.ttl,
        max_segment_bytes=args.journal_max_bytes,
        max_segment_age_s=args.journal_max_age,
    )
    try:
        recovered = store.recover()
    except Exception as exc:  # noqa: BLE001 - a cold shard beats no shard:
        # an unreadable base (torn by something outside the journal's
        # control) degrades to an empty store; the keys recompute.
        print(f"shard {args.shard_id} recovery skipped ({exc})", file=sys.stderr)
        recovered = 0
    server = serve_shard(store, args.shard_id, host=args.host, port=args.port)

    def _shutdown(signum: int, frame: Any) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _shutdown)

    print(
        f"repro-shard {args.shard_id} listening on "
        f"{args.host}:{server.port} pid={os.getpid()} recovered={recovered}",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        store.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
