"""``repro-serve`` — stdlib JSON/HTTP front end for the planner service.

Endpoints:

* ``POST /plan``      — compute or fetch a reservation plan (plan cache);
* ``POST /evaluate``  — Monte-Carlo re-evaluation of a plan's reservations;
* ``GET  /healthz``   — liveness + backend/cache summary (never throttled);
* ``GET  /metrics``   — the full metrics registry + cache stats as JSON.

Admission control: at most ``max_inflight`` POST requests execute
concurrently; excess requests are answered immediately with ``429 Too Many
Requests`` and a ``Retry-After`` hint instead of queueing unboundedly —
under overload a planner that sheds load stays responsive for the requests
it does admit.  ``/healthz`` and ``/metrics`` bypass admission so operators
can always observe an overloaded server.

Graceful shutdown: SIGINT/SIGTERM stop the accept loop, in-flight requests
finish, and (with ``--snapshot-out``) the plan cache is persisted for the
next boot's ``--warm-start``.

Built only on ``http.server``/``socketserver`` — no new dependencies.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro import observability as obs
from repro.observability import metrics
from repro.observability import names
from repro.service.planner import PlannerService, ServiceError

__all__ = ["PlanServer", "serve", "main"]

MAX_BODY_BYTES = 8 * 1024 * 1024


class PlanServer(ThreadingHTTPServer):
    """Threaded HTTP server with a bounded in-flight request budget."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: PlannerService,
        max_inflight: int = 8,
    ):
        super().__init__(address, _Handler)
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        self.service = service
        self.max_inflight = max_inflight
        self._admission = threading.Semaphore(max_inflight)

    def try_admit(self) -> bool:
        return self._admission.acquire(blocking=False)

    def release(self) -> None:
        self._admission.release()

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    server: PlanServer  # narrowed for attribute access below
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # default logs every request to stderr
        pass

    def _send_json(self, status: int, payload: dict, extra_headers=()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, extra_headers=()) -> None:
        metrics.inc(f"{names.SERVER_RESPONSES_PREFIX}{status}")
        self._send_json(status, {"error": message}, extra_headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ServiceError("request body required")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:
        metrics.inc(names.SERVER_REQUESTS)
        if self.path == "/healthz":
            self._send_json(200, self.server.service.health())
        elif self.path == "/metrics":
            self._send_json(200, self.server.service.metrics_payload())
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def do_POST(self) -> None:
        metrics.inc(names.SERVER_REQUESTS)
        if self.path not in ("/plan", "/evaluate"):
            self._error(404, f"unknown endpoint {self.path!r}")
            return
        if not self.server.try_admit():
            metrics.inc(names.SERVER_THROTTLED)
            self._error(
                429,
                f"server at capacity ({self.server.max_inflight} in-flight)",
                extra_headers=[("Retry-After", "1")],
            )
            return
        try:
            body = self._read_body()
            if self.path == "/plan":
                self._send_json(200, self.server.service.plan(body))
            else:
                self._send_json(200, self.server.service.evaluate(body))
            metrics.inc(names.SERVER_RESPONSES_OK)
        except ServiceError as exc:
            self._error(exc.status, str(exc))
        except Exception as exc:  # noqa: BLE001 - service must not die per-request
            metrics.inc(names.SERVER_ERRORS)
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")
        finally:
            self.server.release()


def serve(
    service: PlannerService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_inflight: int = 8,
) -> PlanServer:
    """Bind a :class:`PlanServer` (``port=0`` picks an ephemeral port).

    The caller owns the accept loop: run ``server.serve_forever()`` inline or
    in a thread, and ``server.shutdown()`` to stop.
    """
    return PlanServer((host, port), service, max_inflight=max_inflight)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve reservation plans over JSON/HTTP with a plan "
        "cache and a parallel execution backend.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, help="plan cache capacity"
    )
    parser.add_argument(
        "--ttl", type=float, default=None, help="plan cache TTL in seconds"
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="thread",
        help="execution backend for Monte-Carlo evaluation (default: thread)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, help="worker count (0 = one per CPU)"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="admitted concurrent POST requests; beyond this, 429",
    )
    parser.add_argument(
        "--n-samples",
        type=int,
        default=5000,
        help="default Monte-Carlo samples per plan/evaluate request",
    )
    parser.add_argument("--seed", type=int, default=0, help="default RNG seed")
    parser.add_argument(
        "--warm-start",
        metavar="FILE",
        default=None,
        help="load a plan-cache snapshot before serving",
    )
    parser.add_argument(
        "--snapshot-out",
        metavar="FILE",
        default=None,
        help="write a plan-cache snapshot on shutdown",
    )
    args = parser.parse_args(argv)

    obs.enable()
    service = PlannerService.from_options(
        cache_size=args.cache_size,
        ttl=args.ttl,
        backend=args.backend,
        jobs=args.jobs,
        n_samples=args.n_samples,
        seed=args.seed,
    )
    if args.warm_start:
        try:
            loaded = service.cache.load(args.warm_start)
            print(f"Warm start: {loaded} plan(s) from {args.warm_start}")
        except (OSError, json.JSONDecodeError) as exc:
            print(f"Warm start skipped ({exc})", file=sys.stderr)

    server = serve(
        service, host=args.host, port=args.port, max_inflight=args.max_inflight
    )

    stop = threading.Event()

    def _shutdown(signum, frame):
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _shutdown)

    host = server.server_address[0]
    print(
        f"repro-serve listening on http://{host}:{server.port} "
        f"(backend={service.backend.kind}, cache={service.cache.maxsize}, "
        f"max_inflight={args.max_inflight})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        if args.snapshot_out:
            saved = service.cache.save(args.snapshot_out)
            print(f"Snapshot: {saved} plan(s) to {args.snapshot_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
