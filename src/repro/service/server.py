"""``repro-serve`` — stdlib JSON/HTTP front end for the planner service.

Endpoints:

* ``POST /plan``      — compute or fetch a reservation plan (plan cache);
* ``POST /evaluate``  — Monte-Carlo re-evaluation of a plan's reservations;
* ``GET  /healthz``   — liveness + backend/cache summary (never throttled);
* ``GET  /metrics``   — the full metrics registry + cache stats as JSON.

Admission control: at most ``max_inflight`` POST requests execute
concurrently; excess requests are answered immediately with ``429 Too Many
Requests`` and a ``Retry-After`` hint instead of queueing unboundedly —
under overload a planner that sheds load stays responsive for the requests
it does admit.  ``/healthz`` and ``/metrics`` bypass admission so operators
can always observe an overloaded server.

Graceful shutdown: SIGINT/SIGTERM stop the accept loop, the listening
socket closes (new connections are refused), in-flight requests are
*drained* — an explicit condition-variable barrier, since the handler
threads are daemons and would otherwise be abandoned mid-response — and
(with ``--snapshot-out``) the plan cache is persisted exactly once for the
next boot's ``--warm-start``.

Resilience: every admitted POST passes the ``server.request``
fault-injection site, and ``--fault-spec`` installs a
:class:`repro.resilience.faults.FaultPlan` at boot (equivalent to setting
``REPRO_FAULTS``); the breaker / deadline knobs feed the planner's
:class:`~repro.service.planner.ResilienceOptions`.  See
``docs/RESILIENCE.md``.

Built only on ``http.server``/``socketserver`` — no new dependencies.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro import observability as obs
from repro.observability import metrics
from repro.observability import names
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.service.plancache import PlanCache
from repro.service.planner import PlannerService, ResilienceOptions, ServiceError
from repro.service.pool import get_backend
from repro.service.router import ShardFleet

__all__ = ["PlanServer", "serve", "main"]

MAX_BODY_BYTES = 8 * 1024 * 1024


class PlanServer(ThreadingHTTPServer):
    """Threaded HTTP server with a bounded in-flight request budget."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: PlannerService,
        max_inflight: int = 8,
    ):
        super().__init__(address, _Handler)
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        self.service = service
        self.max_inflight = max_inflight
        self._admission = threading.Semaphore(max_inflight)
        # In-flight request barrier for graceful shutdown: handler threads
        # are daemons, so server_close() does not join them — drain() is
        # how main() waits for admitted requests to finish responding.
        self._drain_cv = threading.Condition()
        self._inflight = 0

    def try_admit(self) -> bool:
        admitted = self._admission.acquire(blocking=False)
        if admitted:
            with self._drain_cv:
                self._inflight += 1
        return admitted

    def release(self) -> None:
        with self._drain_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._drain_cv.notify_all()
        self._admission.release()

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every admitted request has finished (or timeout)."""
        limit = time.monotonic() + timeout
        with self._drain_cv:
            while self._inflight > 0:
                remaining = limit - time.monotonic()
                if remaining <= 0:
                    return False
                self._drain_cv.wait(remaining)
            return True

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    server: PlanServer  # narrowed for attribute access below
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # default logs every request to stderr
        pass

    def _send_json(self, status: int, payload: dict, extra_headers=()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, extra_headers=()) -> None:
        metrics.inc(f"{names.SERVER_RESPONSES_PREFIX}{status}")
        self._send_json(status, {"error": message}, extra_headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ServiceError("request body required")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:
        metrics.inc(names.SERVER_REQUESTS)
        if self.path == "/healthz":
            self._send_json(200, self.server.service.health())
        elif self.path == "/metrics":
            self._send_json(200, self.server.service.metrics_payload())
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def do_POST(self) -> None:
        metrics.inc(names.SERVER_REQUESTS)
        if self.path not in ("/plan", "/evaluate"):
            self._error(404, f"unknown endpoint {self.path!r}")
            return
        if not self.server.try_admit():
            metrics.inc(names.SERVER_THROTTLED)
            self._error(
                429,
                f"server at capacity ({self.server.max_inflight} in-flight)",
                extra_headers=[("Retry-After", "1")],
            )
            return
        try:
            # Chaos drills can delay, hang, or fail admitted requests here
            # (an injected error surfaces as a well-formed 500 below).
            faults.fire("server.request")
            body = self._read_body()
            if self.path == "/plan":
                self._send_json(200, self.server.service.plan(body))
            else:
                self._send_json(200, self.server.service.evaluate(body))
            metrics.inc(names.SERVER_RESPONSES_OK)
        except ServiceError as exc:
            self._error(exc.status, str(exc))
        except Exception as exc:  # noqa: BLE001 - service must not die per-request
            metrics.inc(names.SERVER_ERRORS)
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")
        finally:
            self.server.release()


def serve(
    service: PlannerService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_inflight: int = 8,
) -> PlanServer:
    """Bind a :class:`PlanServer` (``port=0`` picks an ephemeral port).

    The caller owns the accept loop: run ``server.serve_forever()`` inline or
    in a thread, and ``server.shutdown()`` to stop.
    """
    return PlanServer((host, port), service, max_inflight=max_inflight)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve reservation plans over JSON/HTTP with a plan "
        "cache and a parallel execution backend.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, help="plan cache capacity"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard the plan cache across N supervised worker processes "
        "(0 = classic in-process cache); each shard persists its slice in "
        "a crash-safe append-only journal under --shard-dir",
    )
    parser.add_argument(
        "--shard-dir",
        metavar="DIR",
        default=None,
        help="root directory for per-shard journals (default: "
        "./repro-shards); each worker owns DIR/shard-K",
    )
    parser.add_argument(
        "--shard-journal-bytes",
        type=int,
        default=1 << 20,
        help="journal segment size that triggers shard compaction",
    )
    parser.add_argument(
        "--ttl", type=float, default=None, help="plan cache TTL in seconds"
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "auto"),
        default="thread",
        help="execution backend for Monte-Carlo evaluation (default: thread; "
        "'auto' picks serial or process per request by problem size)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, help="worker count (0 = one per CPU)"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="admitted concurrent POST requests; beyond this, 429",
    )
    parser.add_argument(
        "--n-samples",
        type=int,
        default=5000,
        help="default Monte-Carlo samples per plan/evaluate request",
    )
    parser.add_argument("--seed", type=int, default=0, help="default RNG seed")
    parser.add_argument(
        "--warm-start",
        metavar="FILE",
        default=None,
        help="load a plan-cache snapshot before serving",
    )
    parser.add_argument(
        "--snapshot-out",
        metavar="FILE",
        default=None,
        help="write a plan-cache snapshot on shutdown",
    )
    parser.add_argument(
        "--fault-spec",
        metavar="SPEC",
        default=None,
        help="install a fault-injection plan (compact spec, inline JSON, or "
        "a .json file; same grammar as REPRO_FAULTS — see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per plan/evaluate computation (default: none)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive MC-backend failures before the breaker opens",
    )
    parser.add_argument(
        "--breaker-recovery",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds the breaker stays open before half-opening a probe",
    )
    parser.add_argument(
        "--mc-task-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-attempt timeout for one parallel Monte-Carlo chunk",
    )
    parser.add_argument(
        "--mc-task-retries",
        type=int,
        default=2,
        help="resubmissions per failed/hung Monte-Carlo chunk",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max seconds to wait for in-flight requests on shutdown",
    )
    args = parser.parse_args(argv)

    obs.enable()
    if args.fault_spec:
        plan = FaultPlan.from_spec(args.fault_spec)
        faults.install(plan)
        print(f"Fault plan installed: {plan!r}", file=sys.stderr)
    fleet = None
    if args.workers > 0:
        fleet = ShardFleet(
            n_shards=args.workers,
            data_dir=args.shard_dir or "repro-shards",
            maxsize_per_shard=args.cache_size,
            ttl=args.ttl,
            journal_max_bytes=args.shard_journal_bytes,
        )
        cache = fleet.start()
        print(
            f"Shard fleet up: {args.workers} worker(s), pids="
            f"{sorted(fleet.pids().values())}, data={fleet.data_dir}",
            file=sys.stderr,
        )
    else:
        cache = PlanCache(maxsize=args.cache_size, ttl=args.ttl)
    service = PlannerService(
        cache=cache,
        backend=get_backend(args.backend, args.jobs),
        n_samples=args.n_samples,
        seed=args.seed,
        resilience=ResilienceOptions(
            request_deadline_s=args.request_deadline,
            mc_task_timeout_s=args.mc_task_timeout,
            mc_task_retries=args.mc_task_retries,
            breaker_failure_threshold=args.breaker_threshold,
            breaker_recovery_s=args.breaker_recovery,
        ),
    )
    if args.warm_start:
        if isinstance(cache, PlanCache):
            try:
                loaded = cache.load(args.warm_start)
                print(f"Warm start: {loaded} plan(s) from {args.warm_start}")
            except Exception as exc:  # noqa: BLE001 - cold boot beats no boot
                # Broad on purpose: a corrupt/unreadable snapshot (or an
                # injected plancache.load fault in chaos runs) must degrade
                # to an empty cache, never keep the server from starting.
                print(f"Warm start skipped ({exc})", file=sys.stderr)
        else:
            # Sharded mode warm-starts from the per-shard journals instead
            # (each worker replayed base + journal before its banner).
            print(
                "Warm start: sharded mode replays per-shard journals; "
                f"ignoring {args.warm_start}",
                file=sys.stderr,
            )

    server = serve(
        service, host=args.host, port=args.port, max_inflight=args.max_inflight
    )

    stop = threading.Event()

    def _shutdown(signum, frame):
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _shutdown)

    host = server.server_address[0]
    print(
        f"repro-serve listening on http://{host}:{server.port} "
        f"(backend={service.backend.kind}, cache={service.cache.maxsize}, "
        f"workers={args.workers}, max_inflight={args.max_inflight})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        # Ordered shutdown: close the socket first (new connections are
        # refused), then drain admitted requests, then snapshot — exactly
        # once, and only after the cache has stopped changing.
        server.server_close()
        if not server.drain(timeout=args.drain_timeout):
            print(
                f"Drain timed out after {args.drain_timeout}s; "
                "snapshotting anyway",
                file=sys.stderr,
            )
        if args.snapshot_out:
            if isinstance(cache, PlanCache):
                try:
                    saved = cache.save(args.snapshot_out)
                    print(
                        f"Snapshot: {saved} plan(s) to {args.snapshot_out}",
                        flush=True,
                    )
                except Exception as exc:  # noqa: BLE001
                    # The shutdown path must complete even when the snapshot
                    # write fails (disk full, injected plancache.save
                    # fault): losing a warm start is recoverable, dying
                    # mid-drain with a traceback is not.
                    print(f"Snapshot failed ({exc})", file=sys.stderr)
            else:
                print(
                    "Snapshot: sharded mode persists per-shard journals; "
                    f"ignoring {args.snapshot_out}",
                    file=sys.stderr,
                )
        if fleet is not None:
            # After the drain: in-flight requests may still be talking to
            # shards right up to their last byte of response.
            fleet.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
