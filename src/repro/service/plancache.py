"""Thread-safe LRU plan cache with TTL and a JSON warm-start snapshot.

The cache stores JSON-serializable plan payloads keyed by the content hashes
of :mod:`repro.service.keys`.  Three properties matter for the service:

* **bounded** — at most ``maxsize`` entries, least-recently-*used* evicted
  first;
* **fresh** — entries older than ``ttl`` seconds (wall clock, so snapshots
  age correctly across processes) are treated as misses and dropped;
* **observable** — hits, misses, evictions and expirations are counted in
  :mod:`repro.observability.metrics` (``plancache.*``), which is how the
  ``/metrics`` endpoint and the CI round-trip assert cache behavior.

``get_or_compute`` is single-flight per key: concurrent requests for the
same uncached plan serialize on a striped key lock, so an expensive DP runs
once instead of once per waiter (different keys still compute in parallel).

Snapshots (:meth:`PlanCache.save` / :meth:`PlanCache.load`) persist entries
with their creation timestamps, so a restarted server warm-starts with the
same keys and remaining TTLs.  Writes are crash-safe: the document goes to
a temporary file in the destination directory and is atomically
``os.replace``-d over the target, so a SIGTERM (or an injected
``plancache.save`` fault) mid-write can never corrupt the previous
snapshot.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.observability import metrics
from repro.observability import names
from repro.resilience import faults
from repro.service.keys import stable_key_hash
from repro.utils.fsio import durable_replace

__all__ = ["PlanCache", "SNAPSHOT_VERSION"]

SNAPSHOT_VERSION = 1

#: Number of striped single-flight locks (bounds memory; collisions only
#: serialize two *different* cold keys, never corrupt anything).
_N_STRIPES = 64


class PlanCache:
    """Bounded, thread-safe, TTL-aware LRU mapping ``key -> payload``."""

    def __init__(
        self,
        maxsize: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive (or None), got {ttl}")
        self.maxsize = int(maxsize)
        self.ttl = ttl
        self._clock = clock
        self._data: "OrderedDict[str, Tuple[float, dict]]" = OrderedDict()
        self._lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(_N_STRIPES)]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def _expired(self, created_at: float) -> bool:
        return self.ttl is not None and self._clock() - created_at > self.ttl

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Return the cached payload or ``None`` (counting hit/miss)."""
        with self._lock:
            entry = self._data.get(key)
            if entry is not None and self._expired(entry[0]):
                del self._data[key]
                metrics.inc(names.PLANCACHE_EXPIRATIONS)
                metrics.set_gauge(names.PLANCACHE_SIZE, len(self._data))
                entry = None
            if entry is None:
                metrics.inc(names.PLANCACHE_MISSES)
                return None
            self._data.move_to_end(key)
            metrics.inc(names.PLANCACHE_HITS)
            return entry[1]

    def put(
        self, key: str, payload: dict, created_at: Optional[float] = None
    ) -> List[str]:
        """Insert (or refresh) an entry, evicting the LRU tail past maxsize.

        Returns the keys evicted to make room (usually empty) — the
        journaled shard store records them so a replayed journal removes
        exactly what the live cache removed.
        """
        stamp = self._clock() if created_at is None else float(created_at)
        evicted: List[str] = []
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (stamp, payload)
            while len(self._data) > self.maxsize:
                victim, _ = self._data.popitem(last=False)
                evicted.append(victim)
                metrics.inc(names.PLANCACHE_EVICTIONS)
            metrics.set_gauge(names.PLANCACHE_SIZE, len(self._data))
        return evicted

    def get_or_compute(
        self, key: str, factory: Callable[[], dict]
    ) -> Tuple[dict, bool]:
        """Return ``(payload, was_cached)``, computing at most once per key.

        The factory runs outside the cache lock (it may take seconds for a
        DP plan) but inside a per-key stripe lock, so concurrent identical
        requests wait for one computation instead of duplicating it.
        """
        payload = self.get(key)
        if payload is not None:
            return payload, True
        # Stripe selection must be process-independent: builtin hash() is
        # randomized per interpreter (PYTHONHASHSEED), which would assign
        # the same key to different stripes in different workers.  The
        # content-hash key already carries uniform bits — use those.
        stripe = self._stripes[stable_key_hash(key) % _N_STRIPES]
        with stripe:
            payload = self.get(key)  # a waiter finds the winner's entry here
            if payload is not None:
                return payload, True
            with metrics.timer(names.PLANCACHE_COMPUTE):
                payload = factory()
            self.put(key, payload)
            return payload, False

    def invalidate(self, key: str) -> bool:
        with self._lock:
            removed = self._data.pop(key, None) is not None
            if removed:
                metrics.set_gauge(names.PLANCACHE_SIZE, len(self._data))
            return removed

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            metrics.set_gauge(names.PLANCACHE_SIZE, 0)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Size/bounds snapshot (counters live in the metrics registry)."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "ttl": self.ttl,
            }

    def entries(self) -> List[Dict[str, object]]:
        """Live (non-expired) entries in LRU order as snapshot-schema dicts.

        Shared by :meth:`save`, the shard journal's compaction, and tests
        that compare recovered state against live state.
        """
        with self._lock:
            return [
                {"key": key, "created_at": created_at, "payload": payload}
                for key, (created_at, payload) in self._data.items()
                if not self._expired(created_at)
            ]

    # ------------------------------------------------------------------
    # Warm-start snapshot
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        """Write every live entry (LRU order) as JSON; returns the count.

        The write is crash-safe and durable: everything lands in a
        same-directory temp file first, only a successful, flushed, fsynced
        write is atomically renamed over ``path``, and the containing
        directory is then fsynced so the rename itself survives a power
        failure (on platforms where directories cannot be opened — no
        ``O_DIRECTORY`` — the directory sync degrades to a no-op and the
        guarantee weakens to rename-atomicity).  An interrupted save leaves
        the previous snapshot byte-identical.
        """
        entries = self.entries()
        doc = {
            "version": SNAPSHOT_VERSION,
            "saved_at": self._clock(),
            "maxsize": self.maxsize,
            "ttl": self.ttl,
            "entries": entries,
        }
        target = os.path.abspath(path)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(target) + ".", suffix=".tmp",
            dir=os.path.dirname(target),
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
                # The fault site sits between write and rename — exactly
                # where a crash would historically have truncated the file.
                faults.fire("plancache.save")
                fh.flush()
                os.fsync(fh.fileno())
            durable_replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        metrics.inc(names.PLANCACHE_SNAPSHOTS_SAVED)
        return len(entries)

    def load(self, path: str) -> int:
        """Merge a snapshot into the cache; returns entries actually loaded.

        Entries keep their original ``created_at`` so TTLs keep aging across
        the restart; expired or malformed entries are skipped, and a version
        mismatch loads nothing (the key schema may have changed).
        """
        faults.fire("plancache.load")
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or doc.get("version") != SNAPSHOT_VERSION:
            metrics.inc(names.PLANCACHE_SNAPSHOT_VERSION_MISMATCH)
            return 0
        loaded = 0
        for entry in doc.get("entries", []):
            try:
                key = str(entry["key"])
                created_at = float(entry["created_at"])
                payload = entry["payload"]
            except (KeyError, TypeError, ValueError):
                continue
            if self._expired(created_at) or not isinstance(payload, dict):
                continue
            self.put(key, payload, created_at=created_at)
            loaded += 1
        metrics.inc(names.PLANCACHE_SNAPSHOT_ENTRIES_LOADED, loaded)
        return loaded
