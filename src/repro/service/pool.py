"""Pluggable execution backends: serial, thread pool, process pool.

Everything embarrassingly parallel in this library — Monte-Carlo chunk
costing (Eq. 13), the verification sweep's (cost model x distribution)
cells, the experiment harness's artifact list — funnels through one small
interface::

    backend = get_backend("thread", jobs=4)
    results = backend.map(fn, items)            # ordered, like map()
    results = backend.map(fn, items, timeout=5.0, retries=1)

Design choices:

* ``map`` preserves input order and is strict: a task that still fails
  after its retry budget raises :class:`PoolError` (partial results are
  never silently dropped).  Retries are governed by a
  :class:`repro.resilience.policies.RetryPolicy` — the plain ``retries=N``
  form maps to ``RetryPolicy.immediate(N)``, the historical zero-backoff
  behavior; pass ``retry_policy=`` for jittered exponential backoff, and
  ``deadline=`` to bound the whole map under one wall-clock budget.
* ``timeout`` is per task attempt.  Thread workers cannot be interrupted
  mid-flight, so a timed-out attempt may keep running in the background
  while its retry proceeds — acceptable for the pure compute tasks used
  here, and the reason the default backend for in-process work is threads
  (numpy releases the GIL in the vectorized kernels).
* every task attempt passes through the ``pool.worker`` fault-injection
  site (:mod:`repro.resilience.faults`), so chaos drills can make any
  fraction of workers raise or hang without touching this module.
* The process backend requires picklable functions and arguments
  (module-level functions; reservation sequences holding extender closures
  are *not* picklable — sample/extend first, then ship arrays).
* ``SerialBackend`` is the default everywhere and runs tasks inline in
  submission order, preserving the library's bit-identical seeded behavior
  (``jobs=1`` never changes results).

Metrics (``pool.*``): tasks, retries, timeouts, failures, and a ``pool.map``
timer, all no-ops unless observability is enabled.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
import threading
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.observability import metrics
from repro.observability import names
from repro.resilience import faults
from repro.resilience.policies import Deadline, DeadlineExceeded, RetryPolicy

__all__ = [
    "PoolError",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AutoBackend",
    "get_backend",
    "effective_cpu_count",
    "BACKEND_KINDS",
    "chunk_sizes",
]

T = TypeVar("T")
R = TypeVar("R")

BACKEND_KINDS = ("serial", "thread", "process", "auto")


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(len(getaffinity(0)), 1)
        except OSError:  # pragma: no cover - platform-specific
            pass
    return os.cpu_count() or 1


class PoolError(RuntimeError):
    """A task exhausted its retry budget (the original error is chained)."""


def chunk_sizes(n_items: int, n_chunks: int) -> List[int]:
    """Split ``n_items`` into ``n_chunks`` nearly equal positive chunk sizes.

    Returns fewer than ``n_chunks`` entries when there are fewer items than
    chunks; sizes differ by at most one and sum to ``n_items``.
    """
    if n_items < 1:
        raise ValueError(f"need at least one item, got {n_items}")
    if n_chunks < 1:
        raise ValueError(f"need at least one chunk, got {n_chunks}")
    n_chunks = min(n_chunks, n_items)
    base, rem = divmod(n_items, n_chunks)
    return [base + (1 if i < rem else 0) for i in range(n_chunks)]


def _run_task(fn: Callable[[T], R], item: T) -> R:
    """One task attempt, routed through the ``pool.worker`` fault site.

    Module-level so the process backend can pickle it; child processes
    pick chaos drills up through the inherited ``REPRO_FAULTS`` variable.
    """
    faults.fire("pool.worker")  # repro-lint: disable=RS203 -- every backend.map caller rides RetryPolicy + the degradation ladder; the flagged routes go through name-based CHA conflating PlanCache.get_or_compute with the sharded tier's, whose factory runs under the same ladder
    return fn(item)


def _resolve_policy(retries: int, retry_policy: Optional[RetryPolicy]) -> RetryPolicy:
    if retry_policy is not None:
        return retry_policy
    return RetryPolicy.immediate(retries)


class ExecutionBackend(abc.ABC):
    """Ordered fan-out of a function over a sequence of items."""

    #: Identifier used in metrics and the ``/healthz`` payload.
    kind: str = "backend"

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""

    def close(self) -> None:
        """Release worker resources (idempotent; serial backend is a no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"


class SerialBackend(ExecutionBackend):
    """Inline execution in submission order (the deterministic default).

    ``timeout`` is ignored: there is no second thread to bound an inline
    call with, and the serial path exists precisely to reproduce the
    unpooled behavior exactly.
    """

    kind = "serial"

    def map(self, fn, items, timeout=None, retries=0, retry_policy=None,
            deadline=None):
        policy = _resolve_policy(retries, retry_policy)
        results = []
        with metrics.timer(names.POOL_MAP):
            for item in items:
                metrics.inc(names.POOL_TASKS)
                attempt = 0
                while True:
                    if deadline is not None:
                        deadline.require("pool.map")
                    attempt += 1
                    try:
                        results.append(_run_task(fn, item))
                        break
                    except Exception as exc:
                        if not policy.should_retry(attempt, exc, deadline):
                            metrics.inc(names.POOL_FAILURES)
                            raise PoolError(
                                f"task failed after {attempt} attempt(s): {exc}"
                            ) from exc
                        metrics.inc(names.POOL_RETRIES)
                        policy.backoff(attempt, deadline)
        return results


class _ExecutorBackend(ExecutionBackend):
    """Shared submit/collect loop for the concurrent.futures backends."""

    def __init__(self, executor: concurrent.futures.Executor, jobs: int):
        self._executor = executor
        self.jobs = jobs

    def map(self, fn, items, timeout=None, retries=0, retry_policy=None,
            deadline=None):
        policy = _resolve_policy(retries, retry_policy)
        items = list(items)
        futures = [self._executor.submit(_run_task, fn, item) for item in items]
        metrics.inc(names.POOL_TASKS, len(items))
        results: List = [None] * len(items)
        with metrics.timer(names.POOL_MAP):
            for i, future in enumerate(futures):
                attempts = 0
                while True:
                    wait = timeout if deadline is None else deadline.bound(timeout)
                    attempts += 1
                    try:
                        results[i] = future.result(timeout=wait)
                        break
                    except Exception as exc:
                        if isinstance(exc, concurrent.futures.TimeoutError):
                            metrics.inc(names.POOL_TIMEOUTS)
                            if deadline is not None and deadline.expired():
                                exc = DeadlineExceeded(
                                    f"pool.map deadline expired waiting on task {i}"
                                )
                        if not policy.should_retry(attempts, exc, deadline):
                            metrics.inc(names.POOL_FAILURES)
                            for pending in futures[i:]:
                                pending.cancel()
                            raise PoolError(
                                f"task {i} failed after {attempts} attempt(s): "
                                f"{exc!r}"
                            ) from exc
                        metrics.inc(names.POOL_RETRIES)
                        policy.backoff(attempts, deadline)
                        future = self._executor.submit(_run_task, fn, items[i])
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


class ThreadBackend(_ExecutorBackend):
    """Thread pool — the right choice for numpy-heavy tasks (GIL released)."""

    kind = "thread"

    def __init__(self, jobs: int = 0):
        jobs = _resolve_jobs(jobs)
        super().__init__(
            concurrent.futures.ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="repro-pool"
            ),
            jobs,
        )


class ProcessBackend(_ExecutorBackend):
    """Process pool — for pure-Python CPU-bound tasks; requires picklability."""

    kind = "process"

    def __init__(self, jobs: int = 0):
        jobs = _resolve_jobs(jobs)
        super().__init__(concurrent.futures.ProcessPoolExecutor(max_workers=jobs), jobs)


class AutoBackend(ExecutionBackend):
    """Problem-size-aware backend selection (``kind="auto"``).

    ``AutoBackend`` is a *policy holder*, not a pool: size-aware callers
    (the Monte-Carlo evaluator and the batched kernels in
    :mod:`repro.simulation.batch`) call :meth:`select` with their sample
    count and, when it answers ``"process"``, fetch the lazily-created
    shared :class:`ProcessBackend` via :meth:`process_backend`.  The pool is
    created once, under a lock, and reused across calls — process-pool
    startup (~100s of ms) would otherwise swamp the kernels it accelerates.

    The generic :meth:`map` contract is satisfied by inline serial
    execution: callers that cannot describe their problem size get the
    deterministic default rather than a guess.
    """

    kind = "auto"

    def __init__(self, jobs: int = 0):
        self.jobs = _resolve_jobs(jobs)
        self._lock = threading.Lock()
        self._process: Optional[ProcessBackend] = None
        self._serial = SerialBackend()

    def select(self, n_samples: int, min_samples: int) -> str:
        """``"process"`` when the kernel is big enough to amortize dispatch
        and at least two CPUs are available; ``"serial"`` otherwise."""
        if (
            n_samples >= min_samples
            and self.jobs > 1
            and effective_cpu_count() >= 2
        ):
            return "process"
        return "serial"

    def process_backend(self) -> ProcessBackend:
        """The shared process pool, created on first use."""
        with self._lock:
            if self._process is None:
                self._process = ProcessBackend(self.jobs)
            return self._process

    def map(self, fn, items, timeout=None, retries=0, retry_policy=None,
            deadline=None):
        return self._serial.map(
            fn, items, timeout=timeout, retries=retries,
            retry_policy=retry_policy, deadline=deadline,
        )

    def close(self) -> None:
        with self._lock:
            process, self._process = self._process, None
        if process is not None:
            process.close()


def _resolve_jobs(jobs: int) -> int:
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs or (os.cpu_count() or 1)


def get_backend(kind: Optional[str] = "serial", jobs: int = 1) -> ExecutionBackend:
    """Instantiate a backend by name.

    ``jobs <= 1`` (or ``kind in (None, "serial")``) always yields the
    serial backend — except for ``"auto"``, whose whole point is to make
    that call from the problem size at evaluation time, so it is returned
    as-is and sizes its pool from the CPU count when ``jobs <= 1``.
    """
    if kind is not None and kind not in BACKEND_KINDS:
        raise KeyError(f"unknown backend {kind!r}; known: {BACKEND_KINDS}")
    if kind == "auto":
        return AutoBackend(jobs if jobs > 1 else 0)
    if kind in (None, "serial") or jobs <= 1:
        return SerialBackend()
    if kind == "thread":
        return ThreadBackend(jobs)
    return ProcessBackend(jobs)
