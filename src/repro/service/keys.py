"""Canonical content-hash cache keys for reservation plans.

A reservation plan is a pure function of (distribution, cost model, strategy
+ knobs, discretization / coverage settings): same inputs, same sequence.
That makes the SHA-256 of a *canonical* encoding of those inputs the natural
cache key for the plan cache and the service front end.

Canonicalization rules (``canonical_json``):

* floats are encoded with ``float.hex()`` — exact, locale-free, and stable
  across platforms and Python versions (``repr`` round-trips too, but hex
  makes the no-information-loss property obvious);
* mappings are emitted with sorted keys, so construction order never leaks
  into the key;
* numpy scalars and arrays are reduced to builtin numbers / lists first, so
  ``EmpiricalDistribution`` traces and ``DiscreteDistribution`` supports
  hash by content.

Keys embed a schema version (``KEY_VERSION``): bump it whenever the meaning
of any keyed field changes, and every old snapshot entry silently misses
instead of serving a stale plan.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.cost import CostModel

__all__ = [
    "KEY_VERSION",
    "canonical_json",
    "distribution_token",
    "cost_model_token",
    "strategy_token",
    "plan_key",
    "stable_key_hash",
]

#: Bump on any change to the canonical encoding or the keyed fields.
KEY_VERSION = 1


def stable_key_hash(key: str) -> int:
    """Process-independent 64-bit integer derived from a cache key.

    Plan keys are SHA-256 hex digests, so the first 16 hex characters *are*
    64 uniformly distributed bits — reuse them directly.  Non-hex keys
    (tests, ad-hoc callers) fall back to hashing the key's UTF-8 bytes.

    This is the only hash the stripe locks and the consistent-hashing ring
    may use: the builtin ``hash()`` is randomized per process
    (``PYTHONHASHSEED``), which would scatter one key across different
    stripes/shards in different workers.
    """
    try:
        return int(key[:16], 16)
    except ValueError:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")


def _canonical(obj):
    """Reduce ``obj`` to a JSON-safe structure with exact float encoding."""
    if isinstance(obj, bool) or obj is None:  # bool before int: bool is int
        return obj
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, int):
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, np.floating):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.ndarray):
        return [_canonical(v) for v in obj.tolist()]
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a cache key; "
        "use numbers, strings, arrays, sequences or mappings"
    )


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, exact floats, no spaces)."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


def distribution_token(distribution) -> Dict[str, object]:
    """``{law, params}`` identity of a distribution via its ``params()``."""
    params = distribution.params()
    name = getattr(distribution, "name", None)
    if not name:
        raise TypeError(f"distribution {distribution!r} has no name")
    return {"law": str(name), "params": params}


def cost_model_token(cost_model: CostModel) -> Dict[str, float]:
    return {
        "alpha": cost_model.alpha,
        "beta": cost_model.beta,
        "gamma": cost_model.gamma,
    }


def strategy_token(name: str, knobs: Optional[Mapping] = None) -> Dict[str, object]:
    """Strategy identity: canonical name plus every behavior-affecting knob.

    Knobs must include anything that changes the produced sequence (grid
    sizes, sample counts, seeds, epsilon) — the caller owns completeness
    here, the encoder only guarantees stability.
    """
    return {
        "name": str(name).lower().replace("-", "_"),
        "knobs": dict(knobs or {}),
    }


def plan_key(
    distribution,
    cost_model: CostModel,
    strategy: str,
    knobs: Optional[Mapping] = None,
    coverage: Optional[float] = None,
    extra: Optional[Mapping] = None,
) -> str:
    """SHA-256 content hash identifying one reservation plan.

    ``coverage`` is the quantile the materialized sequence is extended to
    cover (it changes the concrete reservation list, so it is part of the
    identity); ``extra`` is an escape hatch for callers with additional
    discretization knobs.
    """
    payload = {
        "version": KEY_VERSION,
        "distribution": distribution_token(distribution),
        "cost_model": cost_model_token(cost_model),
        "strategy": strategy_token(strategy, knobs),
        "coverage": coverage,
        "extra": dict(extra or {}),
    }
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()
