"""Planner-as-a-service core: request parsing, cached planning, evaluation.

:class:`PlannerService` is the transport-free heart of the service — the
HTTP front end (:mod:`repro.service.server`) and in-process embedders both
talk to it with plain dicts:

Plan request::

    {"distribution": {"law": "lognormal", "params": {"mu": 3.0, "sigma": 0.5}},
     "cost_model":  {"alpha": 1.0, "beta": 0.0, "gamma": 0.0},   # optional
     "strategy":    {"name": "mean_by_mean", "knobs": {}},        # or "name"
     "coverage":    0.999,                                        # optional
     "n_samples":   5000, "seed": 0}                              # optional

The response carries the content-hash ``key``, a ``cached`` flag, the
materialized reservation list and Monte-Carlo statistics.  Identical
requests hit the plan cache and are answered without re-running the
strategy (DP / brute-force scan) — the ``plancache.hits`` counter is the
observable proof.

Evaluate requests reuse the cached plan artifact: the stored reservation
list is costed against a fresh Monte-Carlo sample set (optionally through
the parallel pool).  Samples beyond the plan's coverage horizon are served
by a doubling tail extension — by construction less than ``1 - coverage``
of the probability mass.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.cost import CostModel
from repro.core.sequence import ReservationSequence
from repro.distributions.registry import DISTRIBUTION_FACTORIES, make_distribution
from repro.observability import metrics
from repro.observability import names
from repro.service.keys import plan_key
from repro.service.plancache import PlanCache
from repro.service.pool import ExecutionBackend, SerialBackend, get_backend
from repro.simulation.monte_carlo import monte_carlo_expected_cost
from repro.strategies.registry import PAPER_STRATEGY_ORDER, make_strategy

__all__ = ["ServiceError", "PlannerService", "PAYLOAD_VERSION"]

PAYLOAD_VERSION = 1

DEFAULT_COVERAGE = 0.999
DEFAULT_N_SAMPLES = 5000
MAX_N_SAMPLES = 2_000_000


class ServiceError(ValueError):
    """Invalid request; ``status`` is the HTTP code the front end returns."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _plain(obj):
    """Numpy-free copy of a params/stats structure for JSON payloads."""
    if isinstance(obj, np.ndarray):
        return [_plain(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, Mapping):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    return obj


def _require_mapping(request, field: str, default=None) -> dict:
    value = request.get(field, default)
    if value is None:
        raise ServiceError(f"request is missing {field!r}")
    if not isinstance(value, Mapping):
        raise ServiceError(f"{field!r} must be an object, got {type(value).__name__}")
    return dict(value)


def _parse_distribution(request):
    spec = _require_mapping(request, "distribution")
    law = spec.get("law") or spec.get("name")
    if not law:
        raise ServiceError("distribution needs a 'law' (or 'name') field")
    if law not in DISTRIBUTION_FACTORIES:
        raise ServiceError(
            f"unknown distribution {law!r}; known: {sorted(DISTRIBUTION_FACTORIES)}"
        )
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise ServiceError("distribution 'params' must be an object")
    try:
        return make_distribution(str(law), **{str(k): v for k, v in params.items()})
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad distribution parameters: {exc}") from None


def _parse_cost_model(request) -> CostModel:
    spec = _require_mapping(request, "cost_model", default={})
    try:
        return CostModel(
            alpha=float(spec.get("alpha", 1.0)),
            beta=float(spec.get("beta", 0.0)),
            gamma=float(spec.get("gamma", 0.0)),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad cost model: {exc}") from None


def _parse_strategy(request) -> Tuple[str, dict]:
    spec = request.get("strategy", "mean_by_mean")
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, Mapping):
        raise ServiceError("'strategy' must be a name or an object")
    name = str(spec.get("name", "")).lower().replace("-", "_")
    if name not in PAPER_STRATEGY_ORDER:
        raise ServiceError(
            f"unknown strategy {name!r}; known: {PAPER_STRATEGY_ORDER}"
        )
    knobs = spec.get("knobs", {})
    if not isinstance(knobs, Mapping):
        raise ServiceError("strategy 'knobs' must be an object")
    return name, {str(k): v for k, v in knobs.items()}


def _parse_coverage(request) -> float:
    coverage = float(request.get("coverage", DEFAULT_COVERAGE))
    if not 0.0 < coverage < 1.0:
        raise ServiceError("'coverage' must lie strictly between 0 and 1")
    return coverage


def _parse_evaluation(request, default_n: int, default_seed: int) -> Tuple[int, int]:
    try:
        n_samples = int(request.get("n_samples", default_n))
        seed = int(request.get("seed", default_seed))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad evaluation settings: {exc}") from None
    if not 0 < n_samples <= MAX_N_SAMPLES:
        raise ServiceError(f"'n_samples' must be in (0, {MAX_N_SAMPLES}]")
    return n_samples, seed


def _doubling_tail(values: np.ndarray) -> float:
    return float(values[-1]) * 2.0


class PlannerService:
    """Long-lived planning service: cache + execution backend + planner."""

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        backend: Optional[ExecutionBackend] = None,
        n_samples: int = DEFAULT_N_SAMPLES,
        seed: int = 0,
    ):
        self.cache = cache if cache is not None else PlanCache()
        self.backend = backend if backend is not None else SerialBackend()
        self.default_n_samples = int(n_samples)
        self.default_seed = int(seed)
        self.started_at = time.time()

    @classmethod
    def from_options(
        cls,
        cache_size: int = 256,
        ttl: Optional[float] = None,
        backend: str = "serial",
        jobs: int = 1,
        n_samples: int = DEFAULT_N_SAMPLES,
        seed: int = 0,
    ) -> "PlannerService":
        return cls(
            cache=PlanCache(maxsize=cache_size, ttl=ttl),
            backend=get_backend(backend, jobs),
            n_samples=n_samples,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, request: Mapping) -> Dict[str, object]:
        """Compute (or fetch) the plan for ``request``; see module docstring."""
        metrics.inc(names.SERVICE_PLAN_REQUESTS)
        distribution = _parse_distribution(request)
        cost_model = _parse_cost_model(request)
        strategy_name, knobs = _parse_strategy(request)
        coverage = _parse_coverage(request)
        n_samples, seed = _parse_evaluation(
            request, self.default_n_samples, self.default_seed
        )
        # The key deliberately excludes n_samples/seed: the plan artifact is a
        # pure function of (law, costs, strategy, coverage); the statistics
        # stored alongside are advisory (use /evaluate for fresh numbers).
        key = plan_key(
            distribution,
            cost_model,
            strategy_name,
            knobs=knobs,
            coverage=coverage,
        )

        def compute() -> dict:
            return self._compute_plan(
                key, distribution, cost_model, strategy_name, knobs, coverage,
                n_samples, seed,
            )

        with metrics.timer(names.SERVICE_PLAN):
            payload, cached = self.cache.get_or_compute(key, compute)
        response = dict(payload)
        response["cached"] = cached
        return response

    def _compute_plan(
        self, key, distribution, cost_model, strategy_name, knobs, coverage,
        n_samples, seed,
    ) -> dict:
        try:
            strategy = make_strategy(strategy_name, **knobs)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad strategy knobs: {exc}") from None
        with metrics.timer(names.SERVICE_PLAN_COMPUTE):
            sequence = strategy.sequence(distribution, cost_model)
            sequence.ensure_covers(float(distribution.quantile(coverage)))
            reservations = [float(v) for v in sequence.values]
            mc = monte_carlo_expected_cost(
                sequence,
                distribution,
                cost_model,
                n_samples=n_samples,
                seed=seed,
                backend=self.backend,
            )
        omniscient = cost_model.omniscient_expected_cost(distribution)
        return {
            "version": PAYLOAD_VERSION,
            "key": key,
            "plan": {
                "reservations": reservations,
                "strategy": strategy_name,
                "knobs": _plain(knobs),
                "coverage": coverage,
                "distribution": {
                    "law": distribution.name,
                    "params": _plain(distribution.params()),
                },
                "cost_model": {
                    "alpha": cost_model.alpha,
                    "beta": cost_model.beta,
                    "gamma": cost_model.gamma,
                },
            },
            "statistics": {
                "expected_cost": mc.mean_cost,
                "std_error": mc.std_error,
                "omniscient_cost": omniscient,
                "normalized_cost": mc.mean_cost / omniscient,
                "n_samples": mc.n_samples,
                "seed": seed,
                "max_reservations_hit": mc.max_reservations_hit,
            },
            "computed_at": time.time(),
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, request: Mapping) -> Dict[str, object]:
        """Monte-Carlo re-evaluation of a plan's reservation artifact.

        The plan is resolved through the cache (planning it on a miss), so a
        warm evaluate never re-runs the strategy; only the sampling runs,
        through the service's execution backend.
        """
        metrics.inc(names.SERVICE_EVALUATE_REQUESTS)
        plan_response = self.plan(request)
        distribution = _parse_distribution(request)
        cost_model = _parse_cost_model(request)
        n_samples, seed = _parse_evaluation(
            request, self.default_n_samples, self.default_seed
        )
        values = np.asarray(plan_response["plan"]["reservations"], dtype=float)
        sequence = ReservationSequence(
            values, extend=_doubling_tail, name=plan_response["plan"]["strategy"]
        )
        with metrics.timer(names.SERVICE_EVALUATE):
            mc = monte_carlo_expected_cost(
                sequence,
                distribution,
                cost_model,
                n_samples=n_samples,
                seed=seed,
                backend=self.backend,
            )
        lo, hi = mc.confidence_interval()
        omniscient = cost_model.omniscient_expected_cost(distribution)
        return {
            "version": PAYLOAD_VERSION,
            "key": plan_response["key"],
            "cached": plan_response["cached"],
            "evaluation": {
                "expected_cost": mc.mean_cost,
                "std_error": mc.std_error,
                "ci95": [lo, hi],
                "omniscient_cost": omniscient,
                "normalized_cost": mc.mean_cost / omniscient,
                "n_samples": mc.n_samples,
                "seed": seed,
                "max_reservations_hit": mc.max_reservations_hit,
            },
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "backend": self.backend.kind,
            "cache": self.cache.stats(),
        }

    def metrics_payload(self) -> Dict[str, object]:
        return {
            "metrics": metrics.get_registry().to_dict(),
            "cache": self.cache.stats(),
            "uptime_s": time.time() - self.started_at,
        }
