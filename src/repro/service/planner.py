"""Planner-as-a-service core: request parsing, cached planning, evaluation.

:class:`PlannerService` is the transport-free heart of the service — the
HTTP front end (:mod:`repro.service.server`) and in-process embedders both
talk to it with plain dicts:

Plan request::

    {"distribution": {"law": "lognormal", "params": {"mu": 3.0, "sigma": 0.5}},
     "cost_model":  {"alpha": 1.0, "beta": 0.0, "gamma": 0.0},   # optional
     "strategy":    {"name": "mean_by_mean", "knobs": {}},        # or "name"
     "coverage":    0.999,                                        # optional
     "n_samples":   5000, "seed": 0}                              # optional

The response carries the content-hash ``key``, a ``cached`` flag, the
materialized reservation list and Monte-Carlo statistics.  Identical
requests hit the plan cache and are answered without re-running the
strategy (DP / brute-force scan) — the ``plancache.hits`` counter is the
observable proof.

Evaluate requests reuse the cached plan artifact: the stored reservation
list is costed against a fresh Monte-Carlo sample set (optionally through
the parallel pool).  Samples beyond the plan's coverage horizon are served
by a doubling tail extension — by construction less than ``1 - coverage``
of the probability mass.

**Graceful degradation** (see ``docs/RESILIENCE.md``): the Monte-Carlo
evaluation runs through a fallback ladder — parallel MC on the configured
backend, then serial MC with fewer samples, then the Eq. 3 quadrature,
then the Theorem 1 series — stepping down when the backend's circuit
breaker is open, a rung fails, or the request deadline shrinks.  Every
response is stamped with ``degraded`` / ``evaluator`` / ``attempts`` so
callers (and the chaos CI job) can tell a full-fidelity answer from a
bounded-degraded one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Protocol, Tuple

import numpy as np

from repro.core.cost import CostModel
from repro.core.expectation import expected_cost_direct, expected_cost_series
from repro.core.sequence import ReservationSequence
from repro.distributions.registry import DISTRIBUTION_FACTORIES, make_distribution
from repro.observability import metrics
from repro.observability import names
from repro.resilience import faults
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.degradation import LadderReport, run_ladder
from repro.resilience.policies import Deadline
from repro.service.keys import plan_key
from repro.service.plancache import PlanCache
from repro.service.pool import ExecutionBackend, SerialBackend, get_backend
from repro.simulation.monte_carlo import monte_carlo_expected_cost
from repro.strategies.registry import PAPER_STRATEGY_ORDER, make_strategy

__all__ = [
    "ServiceError",
    "ResilienceOptions",
    "PlanCacheLike",
    "PlannerService",
    "PAYLOAD_VERSION",
]


class PlanCacheLike(Protocol):
    """What the planner needs from a cache tier.

    Satisfied by the in-process :class:`~repro.service.plancache.PlanCache`
    and by the sharded facade
    (:class:`~repro.service.router.ShardedPlanCache`).  The sharded tier
    additionally offers ``get_or_compute_routed`` — detected dynamically so
    responses can be stamped with the shard route without this module
    importing the router.
    """

    maxsize: int
    ttl: Optional[float]

    def get_or_compute(
        self, key: str, factory: Callable[[], dict]
    ) -> Tuple[dict, bool]: ...

    def invalidate(self, key: str) -> bool: ...

    def stats(self) -> Dict[str, object]: ...

PAYLOAD_VERSION = 1

DEFAULT_COVERAGE = 0.999
DEFAULT_N_SAMPLES = 5000
MAX_N_SAMPLES = 2_000_000


@dataclass(frozen=True)
class ResilienceOptions:
    """Knobs for the planner's degradation ladder and backend breaker.

    The defaults keep the no-failure path bit-identical to the raw
    planner: no deadline, a generous per-chunk timeout that only matters
    when a chunk hangs, and retries that only run after a failure.
    ``ResilienceOptions.disabled()`` removes the ladder entirely (used by
    the overhead benchmark as the raw-path baseline).
    """

    enabled: bool = True
    #: Wall-clock budget per request; ``None`` = unbounded.
    request_deadline_s: Optional[float] = None
    #: Per-attempt timeout for one parallel MC chunk (ignored by the
    #: serial backend, which cannot be interrupted).
    mc_task_timeout_s: Optional[float] = 10.0
    #: Resubmissions per failed/hung MC chunk before the rung fails.
    mc_task_retries: int = 2
    #: Consecutive rung-1 failures before the breaker opens.
    breaker_failure_threshold: int = 3
    #: Seconds the breaker stays open before half-opening a probe.
    breaker_recovery_s: float = 5.0
    #: Degraded serial MC uses ``max(min, fraction * n_samples)`` samples.
    degraded_fraction: float = 0.25
    degraded_min_samples: int = 500

    @classmethod
    def disabled(cls) -> "ResilienceOptions":
        return cls(enabled=False)


class ServiceError(ValueError):
    """Invalid request; ``status`` is the HTTP code the front end returns."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _plain(obj):
    """Numpy-free copy of a params/stats structure for JSON payloads."""
    if isinstance(obj, np.ndarray):
        return [_plain(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, Mapping):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    return obj


def _require_mapping(request, field: str, default=None) -> dict:
    value = request.get(field, default)
    if value is None:
        raise ServiceError(f"request is missing {field!r}")
    if not isinstance(value, Mapping):
        raise ServiceError(f"{field!r} must be an object, got {type(value).__name__}")
    return dict(value)


def _parse_distribution(request):
    spec = _require_mapping(request, "distribution")
    law = spec.get("law") or spec.get("name")
    if not law:
        raise ServiceError("distribution needs a 'law' (or 'name') field")
    if law not in DISTRIBUTION_FACTORIES:
        raise ServiceError(
            f"unknown distribution {law!r}; known: {sorted(DISTRIBUTION_FACTORIES)}"
        )
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise ServiceError("distribution 'params' must be an object")
    try:
        return make_distribution(str(law), **{str(k): v for k, v in params.items()})
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad distribution parameters: {exc}") from None


def _parse_cost_model(request) -> CostModel:
    spec = _require_mapping(request, "cost_model", default={})
    try:
        return CostModel(
            alpha=float(spec.get("alpha", 1.0)),
            beta=float(spec.get("beta", 0.0)),
            gamma=float(spec.get("gamma", 0.0)),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad cost model: {exc}") from None


def _parse_strategy(request) -> Tuple[str, dict]:
    spec = request.get("strategy", "mean_by_mean")
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, Mapping):
        raise ServiceError("'strategy' must be a name or an object")
    name = str(spec.get("name", "")).lower().replace("-", "_")
    if name not in PAPER_STRATEGY_ORDER:
        raise ServiceError(
            f"unknown strategy {name!r}; known: {PAPER_STRATEGY_ORDER}"
        )
    knobs = spec.get("knobs", {})
    if not isinstance(knobs, Mapping):
        raise ServiceError("strategy 'knobs' must be an object")
    return name, {str(k): v for k, v in knobs.items()}


def _parse_coverage(request) -> float:
    coverage = float(request.get("coverage", DEFAULT_COVERAGE))
    if not 0.0 < coverage < 1.0:
        raise ServiceError("'coverage' must lie strictly between 0 and 1")
    return coverage


def _parse_evaluation(request, default_n: int, default_seed: int) -> Tuple[int, int]:
    try:
        n_samples = int(request.get("n_samples", default_n))
        seed = int(request.get("seed", default_seed))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad evaluation settings: {exc}") from None
    if not 0 < n_samples <= MAX_N_SAMPLES:
        raise ServiceError(f"'n_samples' must be in (0, {MAX_N_SAMPLES}]")
    return n_samples, seed


def _doubling_tail(values: np.ndarray) -> float:
    return float(values[-1]) * 2.0


def _stats_from_mc(mc, seed: int) -> dict:
    """Statistics block for a Monte-Carlo rung (full or reduced)."""
    return {
        "expected_cost": mc.mean_cost,
        "std_error": mc.std_error,
        "n_samples": mc.n_samples,
        "seed": seed,
        "max_reservations_hit": mc.max_reservations_hit,
    }


def _stats_from_scalar(value: float) -> dict:
    """Statistics block for an analytic rung (quadrature / series).

    The sampling-specific fields are ``None`` — the analytic evaluators
    are exact up to their tail tolerance, so there is no standard error,
    sample count, or seed to report.
    """
    return {
        "expected_cost": float(value),
        "std_error": None,
        "n_samples": None,
        "seed": None,
        "max_reservations_hit": None,
    }


class PlannerService:
    """Long-lived planning service: cache + execution backend + planner."""

    def __init__(
        self,
        cache: Optional[PlanCacheLike] = None,
        backend: Optional[ExecutionBackend] = None,
        n_samples: int = DEFAULT_N_SAMPLES,
        seed: int = 0,
        resilience: Optional[ResilienceOptions] = None,
    ):
        self.cache = cache if cache is not None else PlanCache()
        self.backend = backend if backend is not None else SerialBackend()
        self.default_n_samples = int(n_samples)
        self.default_seed = int(seed)
        self.resilience = resilience if resilience is not None else ResilienceOptions()
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(
                failure_threshold=self.resilience.breaker_failure_threshold,
                recovery_time=self.resilience.breaker_recovery_s,
                name="mc-backend",
            )
            if self.resilience.enabled
            else None
        )
        # Wall-clock epoch for display; monotonic origin for uptime_s —
        # NTP steps / DST jumps must never produce negative or inflated
        # uptime in health probes.
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()

    def uptime_s(self) -> float:
        """Seconds since service construction, immune to wall-clock steps."""
        return time.monotonic() - self._started_monotonic

    @classmethod
    def from_options(
        cls,
        cache_size: int = 256,
        ttl: Optional[float] = None,
        backend: str = "serial",
        jobs: int = 1,
        n_samples: int = DEFAULT_N_SAMPLES,
        seed: int = 0,
        resilience: Optional[ResilienceOptions] = None,
    ) -> "PlannerService":
        return cls(
            cache=PlanCache(maxsize=cache_size, ttl=ttl),
            backend=get_backend(backend, jobs),
            n_samples=n_samples,
            seed=seed,
            resilience=resilience,
        )

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _request_deadline(self) -> Optional[Deadline]:
        opts = self.resilience
        if not opts.enabled or opts.request_deadline_s is None:
            return None
        return Deadline(opts.request_deadline_s)

    def _mc_stats(
        self,
        sequence: ReservationSequence,
        distribution,
        cost_model: CostModel,
        n_samples: int,
        seed: int,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[dict, LadderReport]:
        """Expected-cost statistics through the degradation ladder.

        Rung 1 is the exact historical evaluation — same arguments, same
        backend — so with no faults and a serial backend the numbers are
        bit-identical to the pre-ladder planner.  The later rungs trade
        fidelity for availability: reduced serial MC, then the Eq. 3
        quadrature, then the Theorem 1 series (always attempted, even past
        the deadline, because a late answer beats none).
        """
        opts = self.resilience

        def full_mc() -> dict:
            mc = monte_carlo_expected_cost(
                sequence,
                distribution,
                cost_model,
                n_samples=n_samples,
                seed=seed,
                backend=self.backend,
                task_timeout=opts.mc_task_timeout_s if opts.enabled else None,
                task_retries=opts.mc_task_retries if opts.enabled else 0,
            )
            return _stats_from_mc(mc, seed)

        if not opts.enabled:
            return full_mc(), LadderReport(
                evaluator="mc",
                degraded=False,
                attempts=[{"evaluator": "mc", "outcome": "ok"}],
            )

        def guarded_mc() -> dict:
            assert self.breaker is not None
            return self.breaker.call(full_mc)

        def serial_reduced() -> dict:
            n_reduced = min(
                n_samples,
                max(
                    opts.degraded_min_samples,
                    int(n_samples * opts.degraded_fraction),
                ),
            )
            mc = monte_carlo_expected_cost(
                sequence, distribution, cost_model,
                n_samples=n_reduced, seed=seed,
            )
            return _stats_from_mc(mc, seed)

        def quadrature() -> dict:
            return _stats_from_scalar(
                expected_cost_direct(sequence, distribution, cost_model)
            )

        def series() -> dict:
            return _stats_from_scalar(
                expected_cost_series(sequence, distribution, cost_model)
            )

        return run_ladder(
            [
                ("mc", guarded_mc),
                ("mc_serial_reduced", serial_reduced),
                ("quadrature", quadrature),
                ("series", series),
            ],
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, request: Mapping) -> Dict[str, object]:
        """Compute (or fetch) the plan for ``request``; see module docstring."""
        metrics.inc(names.SERVICE_PLAN_REQUESTS)
        distribution = _parse_distribution(request)
        cost_model = _parse_cost_model(request)
        strategy_name, knobs = _parse_strategy(request)
        coverage = _parse_coverage(request)
        n_samples, seed = _parse_evaluation(
            request, self.default_n_samples, self.default_seed
        )
        # The key deliberately excludes n_samples/seed: the plan artifact is a
        # pure function of (law, costs, strategy, coverage); the statistics
        # stored alongside are advisory (use /evaluate for fresh numbers).
        key = plan_key(
            distribution,
            cost_model,
            strategy_name,
            knobs=knobs,
            coverage=coverage,
        )

        deadline = self._request_deadline()

        def compute() -> dict:
            return self._compute_plan(
                key, distribution, cost_model, strategy_name, knobs, coverage,
                n_samples, seed, deadline,
            )

        # The sharded tier returns the route alongside the payload; stamp
        # it (like the ladder's degraded/evaluator stamp) so callers and
        # the chaos drill can tell a primary answer from a failed-over one.
        routed = getattr(self.cache, "get_or_compute_routed", None)
        with metrics.timer(names.SERVICE_PLAN):
            if routed is not None:
                payload, cached, route = routed(key, compute)
            else:
                payload, cached = self.cache.get_or_compute(key, compute)
                route = None
        response = dict(payload)
        response["cached"] = cached
        if route is not None:
            response["shard"] = route
        return response

    def _compute_plan(
        self, key, distribution, cost_model, strategy_name, knobs, coverage,
        n_samples, seed, deadline=None,
    ) -> dict:
        try:
            strategy = make_strategy(strategy_name, **knobs)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad strategy knobs: {exc}") from None
        with metrics.timer(names.SERVICE_PLAN_COMPUTE):
            sequence = strategy.sequence(distribution, cost_model)
            sequence.ensure_covers(float(distribution.quantile(coverage)))
            reservations = [float(v) for v in sequence.values]
            stats, report = self._mc_stats(
                sequence, distribution, cost_model, n_samples, seed, deadline
            )
        omniscient = cost_model.omniscient_expected_cost(distribution)
        stats = {
            "expected_cost": stats["expected_cost"],
            "std_error": stats["std_error"],
            "omniscient_cost": omniscient,
            "normalized_cost": stats["expected_cost"] / omniscient,
            "n_samples": stats["n_samples"],
            "seed": stats["seed"],
            "max_reservations_hit": stats["max_reservations_hit"],
        }
        return {
            "version": PAYLOAD_VERSION,
            "key": key,
            "plan": {
                "reservations": reservations,
                "strategy": strategy_name,
                "knobs": _plain(knobs),
                "coverage": coverage,
                "distribution": {
                    "law": distribution.name,
                    "params": _plain(distribution.params()),
                },
                "cost_model": {
                    "alpha": cost_model.alpha,
                    "beta": cost_model.beta,
                    "gamma": cost_model.gamma,
                },
            },
            "statistics": stats,
            "computed_at": time.time(),
            # Resilience stamp: how this payload's statistics were obtained
            # (cache hits return the stamp of the original computation).
            **report.to_fields(),
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, request: Mapping) -> Dict[str, object]:
        """Monte-Carlo re-evaluation of a plan's reservation artifact.

        The plan is resolved through the cache (planning it on a miss), so a
        warm evaluate never re-runs the strategy; only the sampling runs,
        through the service's execution backend.
        """
        metrics.inc(names.SERVICE_EVALUATE_REQUESTS)
        plan_response = self.plan(request)
        distribution = _parse_distribution(request)
        cost_model = _parse_cost_model(request)
        n_samples, seed = _parse_evaluation(
            request, self.default_n_samples, self.default_seed
        )
        values = np.asarray(plan_response["plan"]["reservations"], dtype=float)
        sequence = ReservationSequence(
            values, extend=_doubling_tail, name=plan_response["plan"]["strategy"]
        )
        deadline = self._request_deadline()
        with metrics.timer(names.SERVICE_EVALUATE):
            stats, report = self._mc_stats(
                sequence, distribution, cost_model, n_samples, seed, deadline
            )
        if stats["std_error"] is not None:
            half = 1.96 * stats["std_error"]
            ci95 = [stats["expected_cost"] - half, stats["expected_cost"] + half]
        else:
            ci95 = None
        omniscient = cost_model.omniscient_expected_cost(distribution)
        return {
            "version": PAYLOAD_VERSION,
            "key": plan_response["key"],
            "cached": plan_response["cached"],
            "evaluation": {
                "expected_cost": stats["expected_cost"],
                "std_error": stats["std_error"],
                "ci95": ci95,
                "omniscient_cost": omniscient,
                "normalized_cost": stats["expected_cost"] / omniscient,
                "n_samples": stats["n_samples"],
                "seed": stats["seed"],
                "max_reservations_hit": stats["max_reservations_hit"],
            },
            # Stamp for *this* evaluation run (the plan payload carries its
            # own stamp from when it was computed).
            **report.to_fields(),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        fault_plan = faults.get_plan()
        return {
            "status": "ok",
            "uptime_s": self.uptime_s(),
            "backend": self.backend.kind,
            "cache": self.cache.stats(),
            "resilience": {
                "enabled": self.resilience.enabled,
                "breaker": self.breaker.stats() if self.breaker is not None else None,
                "faults": fault_plan.stats() if fault_plan is not None else None,
            },
        }

    def metrics_payload(self) -> Dict[str, object]:
        return {
            "metrics": metrics.get_registry().to_dict(),
            "cache": self.cache.stats(),
            "breaker": self.breaker.stats() if self.breaker is not None else None,
            "uptime_s": self.uptime_s(),
        }
