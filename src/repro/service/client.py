"""Minimal stdlib client for a running ``repro-serve`` instance.

Wraps the four endpoints in typed helpers::

    client = ServiceClient("http://127.0.0.1:8642")
    resp = client.plan("lognormal", {"mu": 3.0, "sigma": 0.5},
                       strategy="mean_by_mean")
    resp["cached"]                      # False first time, True after
    client.evaluate("lognormal", {"mu": 3.0, "sigma": 0.5}, n_samples=20000)
    client.metrics()["metrics"]["counters"]["plancache.hits"]

Errors: non-2xx responses raise :class:`ServiceHTTPError` carrying the
status code and the server's ``error`` message; connection failures raise
the underlying ``URLError``.  Only ``urllib`` — no new dependencies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Mapping, Optional

__all__ = ["ServiceHTTPError", "ServiceClient"]


class ServiceHTTPError(RuntimeError):
    """The server answered with a non-2xx status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """HTTP client for the planner service."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, path: str, body: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                message = exc.reason or ""
            raise ServiceHTTPError(exc.code, str(message)) from None

    # -- endpoints -----------------------------------------------------
    def plan(
        self,
        law: str,
        params: Mapping,
        cost_model: Optional[Mapping] = None,
        strategy="mean_by_mean",
        coverage: Optional[float] = None,
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> dict:
        return self._request("/plan", self._body(
            law, params, cost_model, strategy, coverage, n_samples, seed
        ))

    def evaluate(
        self,
        law: str,
        params: Mapping,
        cost_model: Optional[Mapping] = None,
        strategy="mean_by_mean",
        coverage: Optional[float] = None,
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> dict:
        return self._request("/evaluate", self._body(
            law, params, cost_model, strategy, coverage, n_samples, seed
        ))

    def healthz(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _body(law, params, cost_model, strategy, coverage, n_samples, seed) -> dict:
        body: dict = {
            "distribution": {"law": law, "params": dict(params)},
            "strategy": strategy,
        }
        if cost_model is not None:
            body["cost_model"] = dict(cost_model)
        if coverage is not None:
            body["coverage"] = coverage
        if n_samples is not None:
            body["n_samples"] = n_samples
        if seed is not None:
            body["seed"] = seed
        return body
