"""Minimal stdlib client for a running ``repro-serve`` instance.

Wraps the four endpoints in typed helpers::

    client = ServiceClient("http://127.0.0.1:8642")
    resp = client.plan("lognormal", {"mu": 3.0, "sigma": 0.5},
                       strategy="mean_by_mean")
    resp["cached"]                      # False first time, True after
    client.evaluate("lognormal", {"mu": 3.0, "sigma": 0.5}, n_samples=20000)
    client.metrics()["metrics"]["counters"]["plancache.hits"]

Resilience: requests are retried through a
:class:`repro.resilience.policies.RetryPolicy` (jittered exponential
backoff).  Retryable failures are connection errors (``URLError``) and the
transient statuses 429/500/502/503; for a 429 the server's ``Retry-After``
hint is honored (capped at ``max_retry_after`` seconds) instead of the
policy's own backoff — the server knows when capacity frees up better than
the client's jitter does.  Pass ``retry=None`` to restore the historical
fail-fast behavior.

Errors: non-2xx responses raise :class:`ServiceHTTPError` carrying the
status code, the server's ``error`` message, and (for a 429) the parsed
``retry_after``; connection failures raise the underlying ``URLError``.
Only ``urllib`` — no new dependencies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Mapping, Optional

from repro.resilience.policies import RetryPolicy

__all__ = ["ServiceHTTPError", "ServiceClient", "RETRYABLE_STATUSES"]

#: Transient server statuses worth retrying (4xx other than 429 are the
#: caller's bug and fail immediately).
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503})


class ServiceHTTPError(RuntimeError):
    """The server answered with a non-2xx status."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Parsed ``Retry-After`` header in seconds (``None`` when absent).
        self.retry_after = retry_after


def _default_retry_policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=2.0)


class ServiceClient:
    """HTTP client for the planner service."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = "default",  # type: ignore[assignment]
        max_retry_after: float = 5.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # The sentinel keeps ``retry=None`` available as the explicit
        # "never retry" opt-out while defaulting everyone else to backoff.
        self.retry = _default_retry_policy() if retry == "default" else retry
        self.max_retry_after = float(max_retry_after)

    # -- transport -----------------------------------------------------
    def _request_once(self, path: str, body: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                message = exc.reason or ""
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = max(0.0, float(header))
                except ValueError:
                    retry_after = None
            raise ServiceHTTPError(exc.code, str(message), retry_after) from None

    def _retryable(self, exc: Exception) -> bool:
        if isinstance(exc, ServiceHTTPError):
            return exc.status in RETRYABLE_STATUSES
        return isinstance(exc, urllib.error.URLError)

    def _request(self, path: str, body: Optional[dict] = None) -> dict:
        policy = self.retry
        if policy is None:
            return self._request_once(path, body)
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(path, body)
            except Exception as exc:
                if not self._retryable(exc) or not policy.should_retry(
                    attempt, exc
                ):
                    raise
                if (
                    isinstance(exc, ServiceHTTPError)
                    and exc.status == 429
                    and exc.retry_after is not None
                ):
                    # Honor the server's own load-shedding hint (capped so a
                    # hostile/buggy header can't park the client for hours).
                    policy.sleep_for(min(exc.retry_after, self.max_retry_after))
                else:
                    policy.backoff(attempt)

    # -- endpoints -----------------------------------------------------
    def plan(
        self,
        law: str,
        params: Mapping,
        cost_model: Optional[Mapping] = None,
        strategy="mean_by_mean",
        coverage: Optional[float] = None,
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> dict:
        return self._request("/plan", self._body(
            law, params, cost_model, strategy, coverage, n_samples, seed
        ))

    def evaluate(
        self,
        law: str,
        params: Mapping,
        cost_model: Optional[Mapping] = None,
        strategy="mean_by_mean",
        coverage: Optional[float] = None,
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> dict:
        return self._request("/evaluate", self._body(
            law, params, cost_model, strategy, coverage, n_samples, seed
        ))

    def healthz(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def shards(self) -> dict:
        """Per-shard fleet view from ``/healthz``.

        ``{shard_id: {"up", "host", "port", "pid", "size", ...}}`` when the
        server runs ``--workers N``; ``{}`` against a classic single-process
        server.  The chaos drill uses the ``pid`` fields to pick a victim.
        """
        cache = self.healthz().get("cache", {})
        if isinstance(cache, dict) and cache.get("sharded"):
            shards = cache.get("shards", {})
            if isinstance(shards, dict):
                return shards
        return {}

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _body(law, params, cost_model, strategy, coverage, n_samples, seed) -> dict:
        body: dict = {
            "distribution": {"law": law, "params": dict(params)},
            "strategy": strategy,
        }
        if cost_model is not None:
            body["cost_model"] = dict(cost_model)
        if coverage is not None:
            body["coverage"] = coverage
        if n_samples is not None:
            body["n_samples"] = n_samples
        if seed is not None:
            body["seed"] = seed
        return body
