"""Consistent-hashing router and shard fleet for the sharded plan cache.

Three layers, bottom-up:

* :class:`HashRing` — a classic consistent-hashing ring with virtual
  nodes.  Placement depends only on the key bytes and the shard-id set
  (``stable_key_hash`` + SHA-256 tokens, never the randomized builtin
  ``hash()``), so every front-end process and every restart routes a key
  to the same shard, and adding/removing one shard moves only ~1/N of
  the keyspace.
* :class:`ShardedPlanCache` — the front-end facade that speaks the
  :class:`~repro.service.plancache.PlanCache` protocol
  (``get_or_compute`` / ``invalidate`` / ``stats``) but serves every key
  from its ring shard over RPC.  When a shard is down (marked by the
  supervisor, or discovered via a failed RPC) the key fails over to the
  next shard on its preference list; when *all* shards are down the plan
  is computed and returned uncached (``shard.put_drops``) — a dead cache
  tier degrades latency, never availability.
* :class:`ShardFleet` — spawns the ``python -m repro.service.shard``
  worker processes, parses their banners, wires a
  :class:`~repro.resilience.supervisor.Supervisor` over them (SIGKILL a
  worker and its keys fail over within a ping interval while the
  supervisor restarts it; the restarted worker warm-starts from its
  journal), and owns clean shutdown.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import re
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability import metrics
from repro.observability import names
from repro.resilience.supervisor import Supervisor, SupervisorPolicy
from repro.service.keys import stable_key_hash
from repro.service.shard import ShardClient, ShardError, ShardUnavailable

__all__ = ["HashRing", "ShardedPlanCache", "ShardFleet", "BANNER_RE"]

#: Virtual nodes per shard: enough to balance a handful of shards to a few
#: percent without making ring construction or lookup noticeable.
DEFAULT_REPLICAS = 64

#: Striped single-flight locks for cold keys (same rationale as PlanCache).
_N_STRIPES = 64

#: Worker banner: ``repro-shard 2 listening on 127.0.0.1:45123 pid=77 recovered=9``
BANNER_RE = re.compile(
    r"repro-shard (?P<shard>\d+) listening on "
    r"(?P<host>[\d.]+):(?P<port>\d+) pid=(?P<pid>\d+) recovered=(?P<recovered>\d+)"
)


class HashRing:
    """Consistent-hashing ring over integer shard ids with virtual nodes."""

    def __init__(self, shard_ids: Sequence[int], replicas: int = DEFAULT_REPLICAS):
        ids = sorted({int(s) for s in shard_ids})
        if not ids:
            raise ValueError("HashRing needs at least one shard id")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shard_ids = ids
        self.replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for sid in ids:
            for replica in range(self.replicas):
                token = hashlib.sha256(f"shard-{sid}#{replica}".encode()).digest()
                points.append((int.from_bytes(token[:8], "big"), sid))
        points.sort()
        self._points = points
        self._tokens = [token for token, _ in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def primary(self, key: str) -> int:
        """The shard that owns ``key`` when every shard is healthy."""
        return self.preference(key)[0]

    def preference(self, key: str) -> List[int]:
        """All shards in failover order: ring walk from the key's point.

        The first entry is the primary; each subsequent entry is where the
        key lands if everything before it is down.  The order depends only
        on the key and the shard-id set, so every front end fails over to
        the *same* fallback shard (no split-brain caching).
        """
        start = bisect.bisect_right(self._tokens, stable_key_hash(key))
        n_points = len(self._points)
        seen: set = set()
        order: List[int] = []
        for i in range(n_points):
            sid = self._points[(start + i) % n_points][1]
            if sid not in seen:
                seen.add(sid)
                order.append(sid)
                if len(order) == len(self.shard_ids):
                    break
        return order


class ShardedPlanCache:
    """PlanCache-protocol facade that routes keys across shard workers.

    The planner talks to this exactly like it talks to a local
    :class:`~repro.service.plancache.PlanCache`; the extra
    :meth:`get_or_compute_routed` variant additionally returns the route
    (primary / served-by / failover) so responses can be stamped the way
    the degradation ladder stamps evaluator fallbacks.
    """

    def __init__(
        self,
        clients: Dict[int, ShardClient],
        maxsize_per_shard: int = 4096,
        ttl: Optional[float] = None,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if not clients:
            raise ValueError("ShardedPlanCache needs at least one shard client")
        self._clients = dict(clients)
        self._ring = HashRing(sorted(self._clients), replicas=replicas)
        self.maxsize = int(maxsize_per_shard) * len(self._clients)
        self.ttl = ttl
        self._down: set = set()
        self._state_lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(_N_STRIPES)]

    # -- shard liveness (router view; the supervisor drives it) ---------
    @property
    def n_shards(self) -> int:
        return len(self._clients)

    def client(self, shard_id: int) -> ShardClient:
        return self._clients[shard_id]

    def set_client(self, shard_id: int, client: ShardClient) -> None:
        """Swap in the endpoint of a restarted worker (new ephemeral port)."""
        with self._state_lock:
            self._clients[shard_id] = client

    def mark_down(self, shard_id: int) -> bool:
        """Bench a shard; returns True on an up->down transition."""
        with self._state_lock:
            if shard_id in self._down:
                return False
            self._down.add(shard_id)
            up = len(self._clients) - len(self._down)
        metrics.set_gauge(names.SHARD_UP, up)
        return True

    def mark_up(self, shard_id: int) -> bool:
        """Return a shard to service; returns True on a down->up transition."""
        with self._state_lock:
            if shard_id not in self._down:
                return False
            self._down.discard(shard_id)
            up = len(self._clients) - len(self._down)
        metrics.set_gauge(names.SHARD_UP, up)
        return True

    def down_shards(self) -> List[int]:
        with self._state_lock:
            return sorted(self._down)

    def _serving_order(self, key: str) -> Tuple[int, List[int]]:
        """(ring primary, failover-ordered list of currently-up shards)."""
        preference = self._ring.preference(key)
        with self._state_lock:
            down = set(self._down)
        return preference[0], [sid for sid in preference if sid not in down]

    def _note_failure(self, shard_id: int, exc: Exception) -> None:
        # Bench immediately: the next requests skip the dead shard instead
        # of each eating a connect timeout.  The supervisor un-benches it
        # on the next clean health probe.
        self.mark_down(shard_id)

    # -- routed primitives ----------------------------------------------
    def _get_routed(self, key: str) -> Tuple[Optional[dict], Optional[int]]:
        """(payload-or-None, shard that answered or None if all down)."""
        _, order = self._serving_order(key)
        for sid in order:
            with self._state_lock:
                client = self._clients[sid]
            try:
                payload = client.get(key)
            except (ShardUnavailable, ShardError) as exc:
                self._note_failure(sid, exc)
                continue
            return payload, sid  # hit *or* authoritative miss — stop here
        return None, None

    def _put_routed(self, key: str, payload: dict) -> Optional[int]:
        """Store on the first reachable shard in ring order (or drop)."""
        _, order = self._serving_order(key)
        for sid in order:
            with self._state_lock:
                client = self._clients[sid]
            try:
                client.put(key, payload)
            except (ShardUnavailable, ShardError) as exc:
                self._note_failure(sid, exc)
                continue
            return sid
        metrics.inc(names.SHARD_PUT_DROPS)
        return None

    def _route_info(
        self, primary: int, served_by: Optional[int]
    ) -> Dict[str, object]:
        failover = served_by != primary
        if failover:
            metrics.inc(names.SHARD_FAILOVERS)
        return {
            "primary": primary,
            "served_by": served_by,
            "failover": failover,
            "down": self.down_shards(),
        }

    # -- PlanCache protocol ---------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        payload, _ = self._get_routed(key)
        metrics.inc(names.SHARD_HITS if payload is not None else names.SHARD_MISSES)
        return payload

    def put(self, key: str, payload: dict) -> List[str]:
        self._put_routed(key, payload)
        return []

    def get_or_compute(
        self, key: str, factory: Callable[[], dict]
    ) -> Tuple[dict, bool]:
        payload, cached, _ = self.get_or_compute_routed(key, factory)
        return payload, cached

    def get_or_compute_routed(
        self, key: str, factory: Callable[[], dict]
    ) -> Tuple[dict, bool, Dict[str, object]]:
        """``(payload, was_cached, route)`` — the planner stamps ``route``.

        Single-flight per key within this front end (striped locks, same
        discipline as ``PlanCache.get_or_compute``); shard workers are
        shared state across front ends, so a second front end racing the
        same cold key costs one duplicate compute, never corruption.
        """
        primary = self._ring.primary(key)
        payload, served_by = self._get_routed(key)
        if payload is not None:
            metrics.inc(names.SHARD_HITS)
            return payload, True, self._route_info(primary, served_by)
        stripe = self._stripes[stable_key_hash(key) % _N_STRIPES]
        with stripe:
            payload, served_by = self._get_routed(key)
            if payload is not None:
                metrics.inc(names.SHARD_HITS)
                return payload, True, self._route_info(primary, served_by)
            metrics.inc(names.SHARD_MISSES)
            with metrics.timer(names.PLANCACHE_COMPUTE):
                payload = factory()
            served_by = self._put_routed(key, payload)
            return payload, False, self._route_info(primary, served_by)

    def invalidate(self, key: str) -> bool:
        """Broadcast the invalidate: failover may have cached ``key`` on any
        shard, so only the shard that never saw it may skip the record."""
        removed = False
        with self._state_lock:
            clients = dict(self._clients)
            down = set(self._down)
        for sid, client in sorted(clients.items()):
            if sid in down:
                continue
            try:
                removed = client.invalidate(key) or removed
            except (ShardUnavailable, ShardError) as exc:
                self._note_failure(sid, exc)
        return removed

    def __len__(self) -> int:
        total = 0
        for shard in self.stats()["shards"].values():  # type: ignore[union-attr]
            size = shard.get("size") if isinstance(shard, dict) else None
            if isinstance(size, int):
                total += size
        return total

    def stats(self) -> Dict[str, object]:
        """Fleet stats for ``/healthz``: per-shard size/pid/journal + ring."""
        with self._state_lock:
            clients = dict(self._clients)
            down = set(self._down)
        shards: Dict[str, object] = {}
        for sid, client in sorted(clients.items()):
            entry: Dict[str, object] = {
                "up": sid not in down,
                "host": client.host,
                "port": client.port,
            }
            if sid not in down:
                try:
                    entry.update(client.stats())
                except (ShardUnavailable, ShardError) as exc:
                    entry["up"] = False
                    entry["error"] = str(exc)
            shards[str(sid)] = entry
        return {
            "sharded": True,
            "shards": shards,
            "n_shards": len(clients),
            "down": sorted(down),
            "maxsize": self.maxsize,
            "ttl": self.ttl,
        }


class ShardFleet:
    """Spawn, supervise, and tear down the shard worker processes."""

    def __init__(
        self,
        n_shards: int,
        data_dir: str,
        maxsize_per_shard: int = 4096,
        ttl: Optional[float] = None,
        journal_max_bytes: int = 1 << 20,
        journal_max_age_s: Optional[float] = None,
        host: str = "127.0.0.1",
        rpc_timeout: float = 2.0,
        boot_timeout: float = 20.0,
        policy: Optional[SupervisorPolicy] = None,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.data_dir = os.path.abspath(data_dir)
        self.maxsize_per_shard = int(maxsize_per_shard)
        self.ttl = ttl
        self.journal_max_bytes = int(journal_max_bytes)
        self.journal_max_age_s = journal_max_age_s
        self.host = host
        self.rpc_timeout = float(rpc_timeout)
        self.boot_timeout = float(boot_timeout)
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.replicas = int(replicas)
        self._procs: Dict[int, subprocess.Popen] = {}
        self._lock = threading.Lock()
        self.cache: Optional[ShardedPlanCache] = None
        self.supervisor: Optional[Supervisor] = None

    # -- boot -----------------------------------------------------------
    def start(self) -> ShardedPlanCache:
        os.makedirs(self.data_dir, exist_ok=True)
        clients: Dict[int, ShardClient] = {}
        try:
            for sid in range(self.n_shards):
                clients[sid] = self._spawn(sid)
        except Exception:
            self.shutdown()  # reap the workers that did boot
            raise
        cache = ShardedPlanCache(
            clients,
            maxsize_per_shard=self.maxsize_per_shard,
            ttl=self.ttl,
            replicas=self.replicas,
        )
        with self._lock:
            self.cache = cache
        metrics.set_gauge(names.SHARD_UP, self.n_shards)
        supervisor = Supervisor(
            policy=self.policy, on_down=self._on_down, on_up=self._on_up
        )
        for sid in range(self.n_shards):
            supervisor.add(
                name=str(sid),
                is_alive=lambda s=sid: self._is_alive(s),
                ping=lambda s=sid: self._ping(s),
                restart=lambda s=sid: self._restart(s),
            )
        supervisor.start()
        with self._lock:
            self.supervisor = supervisor
        return cache

    def _shard_dir(self, shard_id: int) -> str:
        return os.path.join(self.data_dir, f"shard-{shard_id}")

    def _spawn(self, shard_id: int) -> ShardClient:
        cmd = [
            sys.executable,
            "-c",
            # Not `-m repro.service.shard`: the package __init__ imports the
            # module, and runpy warns when it re-executes an already-imported
            # module.  A plain import + main() is the same entry point.
            "import sys; from repro.service.shard import main; "
            "sys.exit(main(sys.argv[1:]))",
            "--shard-id",
            str(shard_id),
            "--data-dir",
            self._shard_dir(shard_id),
            "--host",
            self.host,
            "--port",
            "0",
            "--maxsize",
            str(self.maxsize_per_shard),
            "--journal-max-bytes",
            str(self.journal_max_bytes),
        ]
        if self.ttl is not None:
            cmd += ["--ttl", str(self.ttl)]
        if self.journal_max_age_s is not None:
            cmd += ["--journal-max-age", str(self.journal_max_age_s)]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, text=True, env=env
        )
        try:
            port = self._read_banner(proc)
        except Exception:
            proc.kill()
            proc.wait()
            raise
        with self._lock:
            self._procs[shard_id] = proc
        return ShardClient(self.host, port, shard_id, timeout=self.rpc_timeout)

    def _read_banner(self, proc: subprocess.Popen) -> int:
        """Wait for the worker's banner; returns its bound port."""
        result: Dict[str, object] = {}

        def read() -> None:
            assert proc.stdout is not None
            for line in proc.stdout:
                match = BANNER_RE.search(line)
                if match:
                    result["port"] = int(match.group("port"))
                    return
            result["eof"] = True

        thread = threading.Thread(target=read, daemon=True)
        thread.start()
        thread.join(self.boot_timeout)
        port = result.get("port")
        if not isinstance(port, int):
            raise RuntimeError(
                "shard worker did not print its banner within "
                f"{self.boot_timeout}s (exit={proc.poll()})"
            )
        return port

    # -- supervisor callbacks -------------------------------------------
    def _is_alive(self, shard_id: int) -> bool:
        with self._lock:
            proc = self._procs.get(shard_id)
        return proc is not None and proc.poll() is None

    def _ping(self, shard_id: int) -> bool:
        cache = self.cache
        if cache is None:
            return False
        return cache.client(shard_id).ping()

    def _restart(self, shard_id: int) -> None:
        """Kill whatever is left of the worker and boot a fresh one.

        The new worker replays its journal before binding, so by the time
        the banner prints its keys are warm again; the supervisor's next
        clean ping returns the shard to the ring.
        """
        with self._lock:
            old = self._procs.get(shard_id)
        if old is not None and old.poll() is None:
            old.kill()
        if old is not None:
            old.wait()
        client = self._spawn(shard_id)
        cache = self.cache
        if cache is not None:
            cache.set_client(shard_id, client)
        metrics.inc(names.SHARD_RESTARTS)

    def _on_down(self, name: str) -> None:
        cache = self.cache
        if cache is not None:
            cache.mark_down(int(name))
        # The supervisor fires on_down exactly once per up->down transition
        # (the router may have benched the shard already — still one death).
        metrics.inc(names.SHARD_DEATHS)

    def _on_up(self, name: str) -> None:
        cache = self.cache
        if cache is not None:
            cache.mark_up(int(name))

    # -- introspection / teardown ---------------------------------------
    def pids(self) -> Dict[int, int]:
        with self._lock:
            return {
                sid: proc.pid
                for sid, proc in self._procs.items()
                if proc.poll() is None
            }

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._lock:
            supervisor = self.supervisor
            self.supervisor = None
        if supervisor is not None:
            # Stop outside the lock: it joins the monitor thread, whose
            # restart callbacks take this lock.
            supervisor.stop()
        with self._lock:
            procs = dict(self._procs)
            self._procs.clear()
        deadline = time.monotonic() + timeout
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
