"""Crash-safe append-only journal for one plan-cache shard (format v1).

The whole-cache JSON snapshot of :class:`~repro.service.plancache.PlanCache`
loses everything computed since the last save when a process dies.  A shard
instead persists every mutation as one JSONL record the moment it happens,
so recovery is *replay*: the compacted ``base.json`` plus the journal
suffix reconstructs the exact pre-crash state, and an interrupted append
can lose at most the final partial record — never corrupt prior ones.

Layout (one directory per shard)::

    <dir>/base.json       # compacted snapshot: {"version", "entries": [...]}
    <dir>/journal.jsonl   # one JSON object per line, first line a header

Record grammar (``op`` selects the shape)::

    {"op": "segment", "version": 1, "created_at": <ts>}      # header
    {"op": "put", "key": k, "created_at": <ts>, "payload": {...}}
    {"op": "invalidate", "key": k}
    {"op": "evict", "key": k}       # capacity eviction, same replay effect
    {"op": "clear"}

Durability discipline:

* every ``append`` is written, flushed, and fsynced before it returns —
  a SIGKILL after ``append`` cannot lose the record;
* compaction publishes the new base via temp file + fsync + ``os.replace``
  + directory fsync (:func:`repro.utils.fsio.durable_replace`), and only
  then resets the journal the same way.  A crash between the two steps
  leaves base *and* the old journal: replaying the full journal on top of
  the base it produced is a no-op (the last record per key wins), so
  recovery stays exact;
* replay treats the first unparsable line as the end of the committed
  prefix: a torn final append is dropped and counted
  (``shard.journal_truncated_records``), prior records are untouched.

Fault sites: ``shard.journal.append`` fires before each record write,
``shard.compact`` fires after the new base is staged but before it is
published — exactly the windows where a crash historically corrupted
whole-file snapshot schemes.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability import metrics
from repro.observability import names
from repro.resilience import faults
from repro.utils.fsio import durable_replace

__all__ = [
    "JOURNAL_VERSION",
    "BASE_FILENAME",
    "JOURNAL_FILENAME",
    "JournalCorrupt",
    "ReplayResult",
    "ShardJournal",
]

JOURNAL_VERSION = 1

BASE_FILENAME = "base.json"
JOURNAL_FILENAME = "journal.jsonl"

#: Ops applied during replay (anything else is skipped for forward compat).
_REPLAY_OPS = ("put", "invalidate", "evict", "clear")


class JournalCorrupt(RuntimeError):
    """The base snapshot is unreadable (journal damage is tolerated)."""


@dataclass
class ReplayResult:
    """Outcome of :meth:`ShardJournal.replay`.

    ``entries`` maps ``key -> (created_at, payload)`` in last-write order;
    TTL filtering is the caller's business (the store applies it when
    loading entries into its cache, mirroring ``PlanCache.load``).
    """

    entries: Dict[str, Tuple[float, dict]] = field(default_factory=dict)
    base_entries: int = 0
    records_applied: int = 0
    truncated_records: int = 0

    @property
    def total_records(self) -> int:
        return self.base_entries + self.records_applied


class ShardJournal:
    """Append-only mutation log with size/age-triggered compaction."""

    def __init__(
        self,
        directory: str,
        max_segment_bytes: int = 1 << 20,
        max_segment_age_s: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        fsync: bool = True,
    ):
        if max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        if max_segment_age_s is not None and max_segment_age_s <= 0:
            raise ValueError(
                f"max_segment_age_s must be positive (or None), got "
                f"{max_segment_age_s}"
            )
        self.directory = os.path.abspath(directory)
        self.max_segment_bytes = int(max_segment_bytes)
        self.max_segment_age_s = max_segment_age_s
        self._clock = clock
        self._fsync = fsync
        self._lock = threading.Lock()
        self._fh: Optional[io.BufferedWriter] = None
        self._segment_bytes = 0
        self._segment_created_at = self._clock()
        self._appends = 0
        self._compactions = 0
        os.makedirs(self.directory, exist_ok=True)
        self._open_segment()

    # -- paths ----------------------------------------------------------
    @property
    def base_path(self) -> str:
        return os.path.join(self.directory, BASE_FILENAME)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, JOURNAL_FILENAME)

    # -- segment lifecycle ---------------------------------------------
    def _open_segment(self) -> None:
        """Open (creating if absent) the journal segment for appending.

        Private helper: every post-construction caller (``compact``'s
        failure path) holds ``_lock``; ``__init__`` runs before the object
        escapes its thread.
        """
        fresh = not os.path.exists(self.journal_path)
        fh = open(self.journal_path, "ab")
        self._fh = fh  # repro-lint: disable=RS104 -- caller holds _lock (or __init__)
        if fresh:
            header = {
                "op": "segment",
                "version": JOURNAL_VERSION,
                "created_at": self._clock(),
            }
            self._write_line(header)
            self._segment_created_at = float(header["created_at"])  # repro-lint: disable=RS104 -- caller holds _lock (or __init__)
        else:
            self._segment_created_at = self._read_segment_created_at()  # repro-lint: disable=RS104 -- caller holds _lock (or __init__)
        self._segment_bytes = os.path.getsize(self.journal_path)  # repro-lint: disable=RS104 -- caller holds _lock (or __init__)

    def _read_segment_created_at(self) -> float:
        """Creation stamp from the existing segment's header (best effort)."""
        try:
            with open(self.journal_path, "rb") as fh:
                first = fh.readline()
            header = json.loads(first.decode("utf-8"))
            if header.get("op") == "segment":
                return float(header["created_at"])
        except (OSError, ValueError, TypeError, KeyError):
            pass
        return self._clock()

    def _write_line(self, record: dict) -> int:
        """Serialize, write, flush, and fsync one record; returns its size.

        Private helper: callers (``append``, ``_open_segment`` via
        ``__init__``/``compact``) hold ``_lock``.
        """
        assert self._fh is not None
        line = json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
        self._fh.write(line)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self._segment_bytes += len(line)  # repro-lint: disable=RS104 -- caller holds _lock
        return len(line)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- appending ------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one mutation record.

        The ``shard.journal.append`` fault site fires *before* any byte is
        written: an injected failure (or a real one — disk full, closed
        fd) leaves the committed prefix byte-identical, which the torn-
        write tests assert offset by offset.
        """
        if "op" not in record:
            raise ValueError(f"journal record needs an 'op': {record!r}")
        with self._lock:
            if self._fh is None:
                raise RuntimeError("journal is closed")
            faults.fire("shard.journal.append")  # repro-lint: disable=RS203 -- raising out of ShardStore's mutators is the torn-write contract (the cache is only mutated after the record is durable); the serving path terminates in the shard RPC handler's structured-error guard, and the remaining routes are name-based CHA conflating ShardStore.put/invalidate with unrelated caches'
            written = self._write_line(record)
            self._appends += 1
        metrics.inc(names.SHARD_JOURNAL_APPENDS)
        metrics.inc(names.SHARD_JOURNAL_BYTES, written)

    def should_compact(self) -> bool:
        """Size/age trigger for :meth:`compact` (header line excluded)."""
        with self._lock:
            if self._segment_bytes >= self.max_segment_bytes:
                return True
            if self.max_segment_age_s is not None:
                age = self._clock() - self._segment_created_at
                if age >= self.max_segment_age_s:
                    return True
            return False

    # -- compaction -----------------------------------------------------
    def compact(self, entries: Sequence[Dict[str, object]]) -> None:
        """Fold ``entries`` (the live state) into a new base, reset the log.

        Publish order is what makes this crash-safe: the new base becomes
        durable *first*; only then is the journal replaced by a fresh
        header-only segment.  A crash in between leaves base + old journal,
        and replaying a journal on top of the state it produced is
        idempotent (the final record per key decides).
        """
        doc = {
            "version": JOURNAL_VERSION,
            "compacted_at": self._clock(),
            "entries": list(entries),
        }
        with self._lock:
            if self._fh is None:
                raise RuntimeError("journal is closed")
            fd, tmp_path = tempfile.mkstemp(
                prefix=BASE_FILENAME + ".", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, separators=(",", ":"))
                    fh.write("\n")
                    # The fault window: base staged but not yet published.
                    faults.fire("shard.compact")
                    fh.flush()
                    os.fsync(fh.fileno())  # repro-lint: disable=RS202 -- durability barrier: the base must be on disk before the segment is reset, and appends must not interleave with the swap
                durable_replace(tmp_path, self.base_path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            # Base is durable; now reset the segment the same way.
            self._fh.close()
            self._fh = None
            header = {
                "op": "segment",
                "version": JOURNAL_VERSION,
                "created_at": self._clock(),
            }
            fd, tmp_path = tempfile.mkstemp(
                prefix=JOURNAL_FILENAME + ".", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as fh_bytes:
                    fh_bytes.write(
                        json.dumps(header, separators=(",", ":")).encode("utf-8")
                        + b"\n"
                    )
                    fh_bytes.flush()
                    os.fsync(fh_bytes.fileno())  # repro-lint: disable=RS202 -- durability barrier: the fresh segment must be on disk before it replaces the old one; appends must not interleave
                durable_replace(tmp_path, self.journal_path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                self._open_segment()  # reattach to whatever segment survived
                raise
            self._fh = open(self.journal_path, "ab")  # repro-lint: disable=RS202 -- reattach before releasing the lock, or a concurrent append would race the swap
            self._segment_bytes = os.path.getsize(self.journal_path)
            self._segment_created_at = float(header["created_at"])
            self._compactions += 1
        metrics.inc(names.SHARD_COMPACTIONS)

    # -- replay ---------------------------------------------------------
    def replay(self) -> ReplayResult:
        """Reconstruct ``key -> (created_at, payload)`` from base + journal.

        The committed prefix of the journal is every line up to the first
        one that fails to parse: under the append discipline above only a
        torn final append can produce such a line, and it is dropped (and
        counted) rather than poisoning recovery.
        """
        result = ReplayResult()
        base = self._load_base()
        if base is not None:
            for entry in base.get("entries", []):
                try:
                    key = str(entry["key"])
                    created_at = float(entry["created_at"])  # type: ignore[index]
                    payload = entry["payload"]  # type: ignore[index]
                except (KeyError, TypeError, ValueError, IndexError):
                    continue
                if not isinstance(payload, dict):
                    continue
                result.entries[key] = (created_at, payload)
                result.base_entries += 1
        for record in self._committed_records(result):
            op = record.get("op")
            if op not in _REPLAY_OPS:
                continue  # header / future record types
            if op == "clear":
                result.entries.clear()
                result.records_applied += 1
                continue
            try:
                key = str(record["key"])
            except (KeyError, TypeError):
                continue
            if op == "put":
                try:
                    created_at = float(record["created_at"])
                    payload = record["payload"]
                except (KeyError, TypeError, ValueError):
                    continue
                if not isinstance(payload, dict):
                    continue
                result.entries[key] = (created_at, payload)
            else:  # invalidate / evict
                result.entries.pop(key, None)
            result.records_applied += 1
        metrics.inc(names.SHARD_JOURNAL_RECORDS_REPLAYED, result.records_applied)
        if result.truncated_records:
            metrics.inc(
                names.SHARD_JOURNAL_TRUNCATED_RECORDS, result.truncated_records
            )
        return result

    def _load_base(self) -> Optional[dict]:
        try:
            with open(self.base_path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise JournalCorrupt(f"unreadable base {self.base_path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != JOURNAL_VERSION:
            # A future format: refuse to guess, start empty (the caller
            # logs it; keys silently recompute, never corrupt).
            return None
        return doc

    def _committed_records(self, result: ReplayResult) -> List[dict]:
        """Parse the journal's committed prefix (torn final line dropped)."""
        try:
            with open(self.journal_path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return []
        records: List[dict] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # End of the committed prefix: at most the torn final
                # append under the fsync-per-record discipline.
                result.truncated_records += 1
                break
            if isinstance(record, dict):
                records.append(record)
        return records

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "directory": self.directory,
                "segment_bytes": self._segment_bytes,
                "segment_age_s": self._clock() - self._segment_created_at,
                "max_segment_bytes": self.max_segment_bytes,
                "max_segment_age_s": self.max_segment_age_s,
                "appends": self._appends,
                "compactions": self._compactions,
                "has_base": os.path.exists(self.base_path),
            }
