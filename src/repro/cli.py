"""``repro-plan`` — the user-facing planning tool.

Turn a job's execution-time distribution (named parameters, or a file of
historical runtimes to fit) plus a platform cost model into a concrete
reservation sequence, with expected cost, risk statistics and the
reservation-count distribution:

    repro-plan --distribution lognormal --param mu=3.0 --param sigma=0.5
    repro-plan --fit runtimes.txt --alpha 0.95 --beta 1 --gamma 1.05
    repro-plan --distribution exponential --param rate=2 --strategy equal_time_dp
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

import numpy as np

from repro import observability as obs
from repro.core.cost import CostModel
from repro.distributions.fitting import fit_lognormal
from repro.distributions.registry import make_distribution
from repro.simulation.statistics import cost_statistics, reservation_count_pmf
from repro.strategies.registry import PAPER_STRATEGY_ORDER, make_strategy
from repro.utils.tables import format_table

__all__ = ["main"]

#: Counters promised in the metrics JSON even when a run never touches the
#: corresponding code path (e.g. a closed-form strategy never iterates the
#: Eq. (11) recurrence).
_PROMISED_COUNTERS = (
    "recurrence.iterations",
    "mc.samples",
    "sequence.extensions",
)


def _parse_params(pairs) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"bad --param {pair!r}; expected name=value")
        name, value = pair.split("=", 1)
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"bad --param value in {pair!r}") from None
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Compute a reservation sequence for a stochastic job "
        "(Aupy et al., IPDPS 2019).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--distribution",
        help="distribution name (exponential, weibull, gamma, lognormal, "
        "truncated_normal, pareto, uniform, beta, bounded_pareto)",
    )
    source.add_argument(
        "--fit",
        metavar="FILE",
        help="fit a LogNormal to one-runtime-per-line FILE instead",
    )
    parser.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="distribution parameter (repeatable), e.g. --param mu=3.0",
    )
    parser.add_argument("--alpha", type=float, default=1.0, help="reservation price")
    parser.add_argument("--beta", type=float, default=0.0, help="usage price")
    parser.add_argument("--gamma", type=float, default=0.0, help="per-request overhead")
    parser.add_argument(
        "--strategy",
        default="brute_force",
        choices=PAPER_STRATEGY_ORDER,
        help="planning heuristic (default: brute_force)",
    )
    parser.add_argument(
        "--coverage",
        type=float,
        default=0.999,
        help="print reservations until this fraction of jobs is covered",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    spot = parser.add_argument_group(
        "spot tier advice",
        "compare the plan against spot-market execution (repro.platforms.spot)",
    )
    spot.add_argument(
        "--spot-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="spot interruptions per hour; enables the tier advice footer",
    )
    spot.add_argument(
        "--spot-price",
        type=float,
        default=0.3,
        metavar="PRICE",
        help="spot price per busy hour (default 0.3; on-demand is alpha)",
    )
    spot.add_argument(
        "--spot-checkpoint-overhead",
        type=float,
        default=0.05,
        metavar="HOURS",
        help="checkpoint write overhead in hours (default 0.05)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the plan as a JSON document to FILE",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree and per-phase timing table of this run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the run's metrics registry as JSON to FILE",
    )
    args = parser.parse_args(argv)

    # Every CLI run doubles as a smoke benchmark: metrics and tracing are on
    # for the duration of main() (library defaults stay off).
    was_enabled = obs.is_enabled()
    obs.enable()
    registry = obs.get_registry()
    registry.reset()
    for name in _PROMISED_COUNTERS:
        registry.counter(name)
    try:
        return _run(args, registry)
    finally:
        if not was_enabled:
            obs.disable()


def _run(args, registry) -> int:

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    if args.fit:
        try:
            samples = np.loadtxt(args.fit, dtype=float).ravel()
        except OSError as exc:
            raise SystemExit(f"cannot read {args.fit}: {exc}") from None
        fit = fit_lognormal(samples)
        dist = fit.distribution()
        print(
            f"Fitted LogNormal(mu={fit.mu:.4f}, sigma={fit.sigma:.4f}) from "
            f"{fit.n_samples} runs (mean {fit.mean:.3f}, std {fit.std:.3f})"
        )
    else:
        try:
            dist = make_distribution(args.distribution, **_parse_params(args.param))
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
    cost_model = CostModel(alpha=args.alpha, beta=args.beta, gamma=args.gamma)
    print(f"Workload: {dist.describe()}")
    print(f"Costs:    {cost_model.describe()}\n")

    # ------------------------------------------------------------------
    # Plan
    # ------------------------------------------------------------------
    if not (0.0 < args.coverage < 1.0):
        raise SystemExit("--coverage must lie strictly between 0 and 1")
    strategy_kwargs = {"seed": args.seed} if args.strategy == "brute_force" else {}
    strategy = make_strategy(args.strategy, **strategy_kwargs)
    with obs.span(
        "repro-plan", strategy=strategy.name, distribution=dist.name
    ) as root:
        sequence = strategy.sequence(dist, cost_model)
        with obs.span("plan.coverage"), registry.timer("cli.coverage"):
            sequence.ensure_covers(float(dist.quantile(args.coverage)))

        pmf_seq = strategy.sequence(dist, cost_model)
        stats_seq = strategy.sequence(dist, cost_model)
        with obs.span("evaluate.statistics"), registry.timer("cli.evaluation"):
            stats = cost_statistics(
                stats_seq, dist, cost_model, n_samples=5000, seed=args.seed
            )
        with obs.span("evaluate.pmf"), registry.timer("cli.evaluation"):
            pmf = reservation_count_pmf(pmf_seq, dist)

    rows = []
    cum = 0.0
    for i, t in enumerate(sequence.values):
        p_here = pmf[i] if i < len(pmf) else 0.0
        cum += p_here
        rows.append(
            [
                str(i + 1),
                f"{t:.4g}",
                f"{100.0 * p_here:.1f}%",
                f"{100.0 * min(cum, 1.0):.1f}%",
            ]
        )
    print(
        format_table(
            ["#", "reserve", "P(job ends here)", "cumulative"],
            rows,
            title=f"Recommended sequence ({strategy.name})",
        )
    )

    # The content-hash key under which repro-serve would cache this plan
    # (pure function of law params, cost model, strategy and coverage).
    from repro.service.keys import plan_key

    cache_key = plan_key(
        dist, cost_model, args.strategy, coverage=args.coverage
    )

    omniscient = cost_model.omniscient_expected_cost(dist)
    print(f"\nExpected cost:        {stats.mean:.4f}")
    print(f"vs clairvoyant bound: {stats.mean / omniscient:.3f}x ({omniscient:.4f})")
    print(f"Cost std / p95 / p99: {stats.std:.4f} / {stats.cost_p95:.4f} / "
          f"{stats.cost_p99:.4f}")
    print(f"Expected #requests:   {stats.expected_reservations:.2f}")
    print(f"Plan cache key:       {cache_key[:16]}… (repro-serve)")

    # Timing footer (off the timer registry): every run is a smoke benchmark.
    strategy_s = registry.timer_total(f"strategy.{strategy.name}.sequence")
    evaluation_s = registry.timer_total("cli.evaluation")
    n_builds = int(registry.counter("strategy.sequences_built").value)
    print(
        f"Planning wall time:   {root.duration:.3f}s "
        f"(strategy {strategy_s:.3f}s over {n_builds} builds, "
        f"evaluation {evaluation_s:.3f}s)"
    )

    if args.spot_rate is not None:
        _print_tier_advice(args, dist, cost_model, strategy, stats.mean)

    if args.trace:
        print("\nSpan tree:")
        print(obs.format_span_tree(root))
        print()
        print(
            format_table(
                ["timer", "count", "total s", "mean ms", "p95 ms"],
                list(registry.timer_rows()),
                title="Timers",
            )
        )

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(registry.to_json() + "\n")
        print(f"\nMetrics written to {args.metrics_out}")

    if args.output:
        from repro.io import PlanDocument, plan_to_json

        doc = PlanDocument.from_sequence(
            sequence,
            cost_model,
            strategy=strategy.name,
            distribution={"name": dist.name, "describe": dist.describe()},
            statistics={
                "expected_cost": stats.mean,
                "cost_std": stats.std,
                "cost_p95": stats.cost_p95,
                "cost_p99": stats.cost_p99,
                "expected_reservations": stats.expected_reservations,
                "omniscient_cost": omniscient,
            },
            notes=f"coverage quantile {args.coverage}; plan cache key {cache_key}",
        )
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(plan_to_json(doc))
        print(f"\nPlan written to {args.output}")
    return 0


def _print_tier_advice(args, dist, cost_model, strategy, reserved_cost) -> None:
    """Footer comparing the reserved plan against spot-tier execution."""
    if args.spot_rate < 0:
        raise SystemExit("--spot-rate must be nonnegative")
    if args.spot_price <= 0:
        raise SystemExit("--spot-price must be positive")
    if args.spot_checkpoint_overhead < 0:
        raise SystemExit("--spot-checkpoint-overhead must be nonnegative")
    from repro.platforms.spot import ConstantHazard, ConstantPrice, SpotScenario
    from repro.strategies.spot_tier import tier_lineup

    scenario = SpotScenario(
        price=ConstantPrice(args.spot_price),
        hazard=ConstantHazard(args.spot_rate),
        checkpoint_overhead=args.spot_checkpoint_overhead,
    )
    plans = [
        s.plan(dist, cost_model, scenario)
        for s in tier_lineup(strategy, max_segments=8)
    ]
    best = min(plans, key=lambda p: p.expected_cost)
    rows = []
    for plan in plans:
        knobs = []
        if plan.checkpoint_interval is not None:
            knobs.append(f"tau={plan.checkpoint_interval:.3g}h")
        if 0.0 < plan.spot_work_cap < float("inf"):
            knobs.append(f"spot cap={plan.spot_work_cap:.3g}h")
        rows.append(
            [
                plan.strategy,
                plan.tier,
                "inf"
                if plan.expected_cost == float("inf")
                else f"{plan.expected_cost:.4f}",
                ", ".join(knobs) or "-",
                "<- best" if plan is best else "",
            ]
        )
    print()
    print(
        format_table(
            ["variant", "tier", "expected cost", "knobs", ""],
            rows,
            title=(
                f"Spot tier advice (price {args.spot_price:g}/h, "
                f"{args.spot_rate:g} interruptions/h, checkpoint "
                f"{args.spot_checkpoint_overhead:g}h)"
            ),
        )
    )
    if best.tier == "reserved":
        verdict = "stay on reservations"
    elif best.tier == "spot":
        verdict = "run on spot"
    else:
        verdict = (
            f"spot through the first {best.spot_work_cap:.3g}h of work, "
            f"then reserve"
        )
    saving = reserved_cost - best.expected_cost
    print(
        f"Advice: {verdict} "
        f"(expected saving vs this plan: {max(saving, 0.0):.4f})"
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
