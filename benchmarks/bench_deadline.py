"""Benchmark: extension E6 — cost-vs-deadline Pareto frontier."""

from conftest import run_once

from repro.experiments.deadline_exp import run_deadline_experiment


def test_ext_deadline(benchmark, bench_config):
    rows = run_once(
        benchmark, run_deadline_experiment, (1.0, 1.5, 4.0), 0.99, bench_config
    )
    by_factor = {r.deadline_over_quantile: r for r in rows}
    # Frontier shape: monotone, anchored at the unconstrained cost.
    assert (
        by_factor[1.0].expected_cost
        >= by_factor[1.5].expected_cost
        >= by_factor[4.0].expected_cost
    )
    # Tight guarantee costs real money (>20% premium)...
    assert by_factor[1.0].certainty_premium > 0.2
    # ...a 4x-quantile deadline is effectively free.
    assert by_factor[4.0].certainty_premium < 0.02
    # Every plan honours its deadline.
    for r in rows:
        assert r.worst_case <= r.deadline_over_quantile * by_factor[1.0].worst_case + 1e-6
