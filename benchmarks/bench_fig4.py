"""Benchmark: regenerate Fig. 4 (NeuroHPC robustness sweep)."""

from conftest import run_once

from repro.experiments.fig4 import run_fig4

SCALES = ((1.0, 1.0), (5.0, 5.0), (10.0, 10.0), (1.0, 10.0))


def test_fig4(benchmark, bench_config):
    result = run_once(benchmark, run_fig4, bench_config, scales=SCALES)
    assert len(result.costs) == len(SCALES)
    for scale, row in result.costs.items():
        # Headline: the BF/DP family beats the simple heuristics across the
        # sweep.  At the most extreme coefficient of variation (mean x1,
        # std x10 -> cv ~ 20) individual members can cross, so the claim is
        # asserted family-to-family.
        smart = [row["brute_force"], row["equal_time_dp"], row["equal_probability_dp"]]
        naive = [
            row["mean_by_mean"],
            row["mean_stdev"],
            row["mean_doubling"],
            row["median_by_median"],
        ]
        assert min(smart) < min(naive), scale
        assert max(smart) < row["median_by_median"], scale
        for v in row.values():
            assert v >= 1.0 - 1e-9
