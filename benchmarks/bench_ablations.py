"""Benchmarks: ablation studies A1-A3 (DESIGN.md per-experiment index)."""

from conftest import run_once

from repro.experiments.ablations import (
    run_ablation_bruteforce_grid,
    run_ablation_evaluator,
    run_ablation_truncation,
)


def test_ablation_evaluator(benchmark, bench_config):
    rows = run_once(benchmark, run_ablation_evaluator, bench_config)
    assert len(rows) == 9
    # MC and the exact series agree within ~5 standard errors everywhere.
    for r in rows:
        assert r.z_score < 5.0, r.distribution


def test_ablation_bruteforce_grid(benchmark, bench_config):
    out = run_once(
        benchmark,
        run_ablation_bruteforce_grid,
        ("exponential", "lognormal"),
        (10, 50, 200),
        bench_config,
    )
    for name, by_m in out.items():
        series = [by_m[m] for m in (10, 50, 200)]
        # Finer grids never hurt (series-evaluated, no MC noise).
        assert series[-1] <= series[0] + 1e-9, name
        assert series[-1] < 2.5


def test_ablation_truncation(benchmark, bench_config):
    out = run_once(
        benchmark,
        run_ablation_truncation,
        ("weibull", "pareto"),
        (1e-2, 1e-4, 1e-7),
        bench_config,
    )
    for name, by_eps in out.items():
        for eps, v in by_eps.items():
            assert v >= 1.0 - 1e-9, (name, eps)
