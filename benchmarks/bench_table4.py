"""Benchmark: regenerate Table 4 (discretization convergence in n)."""

from conftest import run_once

from repro.experiments.table4 import run_table4

SAMPLE_COUNTS = (10, 25, 100, 250)


def test_table4(benchmark, bench_config):
    result = run_once(
        benchmark, run_table4, bench_config, sample_counts=SAMPLE_COUNTS
    )
    assert len(result.costs) == 9 * 2 * len(SAMPLE_COUNTS)
    # Heavy tails converge from very poor starts (paper: Weibull 17.0 -> 2.4,
    # Pareto 31.5 -> 1.7 over the n sweep).
    for dist in ("weibull", "pareto"):
        for scheme in ("equal_time", "equal_probability"):
            series = result.series(dist, scheme)
            assert series[0] > 3.0, (dist, scheme)
            assert series[-1] < series[0], (dist, scheme)
    # Uniform is flat at 4/3 for every n.
    for v in result.series("uniform", "equal_time"):
        assert abs(v - 4.0 / 3.0) < 0.02
