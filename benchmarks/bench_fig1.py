"""Benchmark: regenerate Fig. 1 (trace histograms + LogNormal fits)."""

from conftest import run_once

from repro.experiments.fig1 import run_fig1


def test_fig1(benchmark, bench_config):
    result = run_once(benchmark, run_fig1, bench_config, n_runs=5000)
    assert set(result.panels) == {"fmriqa", "vbmqa"}
    vbmqa = result.panels["vbmqa"]
    # Fit recovers the published parameters (mu=7.1128, sigma=0.2039).
    assert abs(vbmqa.fit.mu - vbmqa.generating_mu) < 0.02
    assert abs(vbmqa.fit.sigma - vbmqa.generating_sigma) < 0.02
    # Paper-reported moments: mean ~1253 s, std ~258 s.
    assert abs(vbmqa.fit.mean - 1253.37) < 40.0
    assert vbmqa.ks < 0.05
