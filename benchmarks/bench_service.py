"""Service-layer benchmarks: plan cache latency and pooled MC throughput.

Two questions the ``repro.service`` subsystem exists to answer:

1. How much does the plan cache save?  ``test_cold_vs_warm_plan`` times the
   first (cold: strategy + coverage + MC) and the second (warm: cache fetch)
   identical ``plan`` request and asserts the warm path is faster and never
   re-runs the DP (``plancache.hits`` is the proof).
2. What does the thread backend buy on the 10k-sample Monte-Carlo kernel?
   ``test_thread_vs_serial_mc`` times both paths.  Wall-clock speedups on
   shared CI runners are noisy, so the ratio is *recorded*, not asserted —
   only statistical agreement is enforced.

Timings are hand-rolled ``perf_counter`` medians (these paths are dominated
by cache lookups and numpy kernels; pytest-benchmark's calibration overhead
would swamp the cold/warm contrast) and are persisted to
``BENCH_service.json`` at the repo root (override with ``BENCH_SERVICE_JSON``)
so successive PRs leave a comparable trajectory.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import observability as obs
from repro.core.cost import CostModel
from repro.distributions.registry import make_distribution
from repro.service.journal import ShardJournal
from repro.service.plancache import PlanCache
from repro.service.planner import PlannerService, ResilienceOptions
from repro.service.pool import ProcessBackend, SerialBackend, ThreadBackend
from repro.simulation.batch import monte_carlo_many
from repro.simulation.monte_carlo import monte_carlo_expected_cost
from repro.strategies.registry import make_strategy

_TIMINGS = {}


def _median_time(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))


def _min_of_medians(fn, repeats: int, passes: int = 3) -> float:
    """Noise guard: the min of several medians.

    A single median still rides one bad scheduling window on a shared
    runner; the minimum over independent passes converges on the true cost
    of the code path (what an overhead comparison needs).
    """
    return min(_median_time(fn, repeats) for _ in range(passes))


@pytest.fixture(scope="module", autouse=True)
def _dump_timings():
    """After the module's benchmarks finish, persist the collected timings."""
    yield
    if not _TIMINGS:
        return
    default = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")
    path = os.environ.get("BENCH_SERVICE_JSON", default)
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "cpu_count": os.cpu_count(),
        "benchmarks": _TIMINGS,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


@pytest.fixture()
def fresh_registry():
    was_enabled = obs.is_enabled()
    obs.enable()
    registry = obs.get_registry()
    registry.reset()
    yield registry
    if not was_enabled:
        obs.disable()


REQUEST = {
    "distribution": {"law": "lognormal", "params": {"mu": 3.0, "sigma": 0.5}},
    "strategy": "brute_force",
    "n_samples": 2000,
    "seed": 0,
}


def test_cold_vs_warm_plan(fresh_registry):
    """Warm plan requests must be answered from the cache, and faster."""
    service = PlannerService(cache=PlanCache(maxsize=32), n_samples=2000)

    started = time.perf_counter()
    cold = service.plan(REQUEST)
    cold_s = time.perf_counter() - started
    assert cold["cached"] is False

    warm_s = _median_time(lambda: service.plan(REQUEST), repeats=20)
    warm = service.plan(REQUEST)
    assert warm["cached"] is True
    assert int(fresh_registry.counter("plancache.hits").value) >= 20
    # The whole point of the cache: the warm path skips strategy + MC.
    assert warm_s < cold_s
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    _TIMINGS["plan_cold_vs_warm"] = {
        "cold_s": cold_s,
        "warm_median_s": warm_s,
        "speedup": speedup,
    }


def test_thread_vs_serial_mc(fresh_registry):
    """Thread-vs-serial MC throughput on the 10k-sample benchmark.

    Asserts statistical agreement (the acceptance criterion); records the
    wall-clock ratio without asserting it — 2-core CI runners make hard
    speedup thresholds flaky.
    """
    n = 10_000
    dist = make_distribution("lognormal", mu=3.0, sigma=0.5)
    cm = CostModel.reservation_only()
    seq = make_strategy("mean_by_mean").sequence(dist, cm)
    seq.ensure_covers(float(dist.quantile(0.999)))

    with SerialBackend() as serial_backend:
        serial_s = _median_time(
            lambda: monte_carlo_expected_cost(
                seq, dist, cm, n_samples=n, seed=11, backend=serial_backend
            ),
            repeats=5,
        )
        serial = monte_carlo_expected_cost(
            seq, dist, cm, n_samples=n, seed=11, backend=serial_backend
        )

    jobs = min(4, os.cpu_count() or 1)
    with ThreadBackend(jobs) as thread_backend:
        thread_s = _median_time(
            lambda: monte_carlo_expected_cost(
                seq, dist, cm, n_samples=n, seed=11, backend=thread_backend
            ),
            repeats=5,
        )
        parallel = monte_carlo_expected_cost(
            seq, dist, cm, n_samples=n, seed=11, backend=thread_backend
        )

    # Acceptance: parallel MC within MC confidence tolerance of serial.
    tol = 5.0 * float(np.hypot(serial.std_error, parallel.std_error))
    assert abs(parallel.mean_cost - serial.mean_cost) <= tol

    _TIMINGS["mc_10k_thread_vs_serial"] = {
        "serial_median_s": serial_s,
        "thread_median_s": thread_s,
        "jobs": jobs,
        "speedup": serial_s / thread_s if thread_s > 0 else float("inf"),
        "serial_mean_cost": serial.mean_cost,
        "thread_mean_cost": parallel.mean_cost,
    }


def test_mc_10k_process_vs_serial(fresh_registry):
    """Batch-of-estimates throughput: process pool vs the serial loop.

    ``monte_carlo_many`` is the workload the process backend exists for —
    each worker draws *and* costs its own 10k-sample stream, so sampling
    parallelizes too.  Results are backend-invariant by construction, so
    bit-identity is asserted unconditionally; the >1.5x speedup guard (the
    acceptance criterion CI enforces on ``BENCH_service.json``) only runs
    where a second core exists to provide it.
    """
    n = 10_000
    dist = make_distribution("lognormal", mu=3.0, sigma=0.5)
    cm = CostModel.reservation_only()

    seqs = [make_strategy("mean_by_mean").sequence(dist, cm) for _ in range(24)]
    serial_s = _median_time(
        lambda: monte_carlo_many(seqs, dist, cm, n_samples=n, seed=17),
        repeats=3,
    )
    serial = monte_carlo_many(seqs, dist, cm, n_samples=n, seed=17)

    cpus = os.cpu_count() or 1
    jobs = min(4, cpus)
    with ProcessBackend(jobs) as backend:
        backend.map(len, [()])  # fork workers before the clock starts
        process_s = _median_time(
            lambda: monte_carlo_many(
                seqs, dist, cm, n_samples=n, seed=17, backend=backend
            ),
            repeats=3,
        )
        pooled = monte_carlo_many(
            seqs, dist, cm, n_samples=n, seed=17, backend=backend
        )

    assert [r.mean_cost for r in pooled] == [r.mean_cost for r in serial]
    assert [r.std_error for r in pooled] == [r.std_error for r in serial]

    speedup = serial_s / process_s if process_s > 0 else float("inf")
    _TIMINGS["mc_10k_process_vs_serial"] = {
        "n_estimates": len(seqs),
        "n_samples": n,
        "serial_median_s": serial_s,
        "process_median_s": process_s,
        "jobs": jobs,
        "cpu_count": cpus,
        "speedup": speedup,
    }
    if cpus >= 2:
        assert speedup > 1.5, (
            f"process backend only {speedup:.2f}x over serial on {cpus} cores"
        )


def test_resilience_overhead(fresh_registry):
    """Policies enabled but no faults: the resilience layer must be ~free.

    The degradation ladder, breaker check, and retry wrapper all sit on the
    evaluate hot path; with ``REPRO_FAULTS`` unset they should cost a guard
    clause each.  Asserts enabled-path timings stay within 5% of the
    ``ResilienceOptions.disabled()`` baseline (plus a 2ms epsilon so
    sub-millisecond jitter on shared runners can't flip the verdict).
    Both paths are warmed first and timed as a min-of-medians — a single
    10-repeat median rode scheduler noise into false ~20% "overheads".
    """
    request = {**REQUEST, "strategy": "mean_by_mean"}

    def evaluate_with(resilience):
        service = PlannerService(
            cache=PlanCache(maxsize=32), n_samples=2000, resilience=resilience
        )
        service.plan(request)  # warm the plan cache: time only the MC path
        for _ in range(3):  # warm the evaluate path itself (lazy imports, allocator)
            service.evaluate(request)
        return _min_of_medians(
            lambda: service.evaluate(request), repeats=20, passes=3
        )

    raw_s = evaluate_with(ResilienceOptions.disabled())
    res_s = evaluate_with(None)  # defaults: policies armed, no faults

    overhead = res_s / raw_s - 1.0 if raw_s > 0 else 0.0
    _TIMINGS["resilience_overhead"] = {
        "disabled_min_median_s": raw_s,
        "enabled_min_median_s": res_s,
        "overhead_fraction": overhead,
    }
    assert res_s <= raw_s * 1.05 + 0.002, (
        f"resilience layer costs {overhead:.1%} on the no-fault path"
    )


def test_cache_lookup_overhead(fresh_registry):
    """A warm cache hit should cost microseconds, not milliseconds."""
    cache = PlanCache(maxsize=256)
    for i in range(200):
        cache.put(f"key-{i}", {"plan": [float(i)]})

    hit_s = _median_time(lambda: cache.get("key-100"), repeats=50)
    _TIMINGS["plancache_get_hit"] = {"median_s": hit_s}
    assert hit_s < 0.001


def test_journal_append_and_replay(fresh_registry, tmp_path):
    """Shard-journal costs: per-record append and full-segment replay.

    The append is timed with fsync off — CI disks put the fsync anywhere
    from 50µs (NVMe) to 10ms (contended network storage), which would
    measure the runner, not the code.  What *is* asserted is the code
    path: serializing + writing a record must stay sub-millisecond, and
    replaying a 1000-record segment must stay under a second — a shard
    restart is supposed to be cheap enough that the supervisor's restart
    loop (sub-second backoff) makes sense.  The fsync'd append is recorded
    alongside for the trajectory, unasserted.
    """
    n = 1000
    payload = {"plan": {"reservations": [float(i) for i in range(24)]}}

    journal = ShardJournal(str(tmp_path / "bench"), fsync=False)
    records = [
        {"op": "put", "key": f"{i:064x}", "created_at": float(i),
         "payload": payload}
        for i in range(n)
    ]
    started = time.perf_counter()
    for record in records:
        journal.append(record)
    append_s = (time.perf_counter() - started) / n

    replay_s = _median_time(lambda: journal.replay(), repeats=5)
    entries = journal.replay().entries
    assert len(entries) == n
    journal.close()

    durable = ShardJournal(str(tmp_path / "bench-fsync"), fsync=True)
    fsync_append_s = _median_time(
        lambda: durable.append(records[0]), repeats=20
    )
    durable.close()

    _TIMINGS["shard_journal"] = {
        "n_records": n,
        "append_per_record_s": append_s,
        "append_fsync_per_record_s": fsync_append_s,
        "replay_segment_s": replay_s,
        "replayed_records_per_s": n / replay_s if replay_s > 0 else float("inf"),
    }
    assert append_s < 0.001, f"journal append costs {append_s * 1e6:.0f}µs/record"
    assert replay_s < 1.0, f"1000-record replay took {replay_s:.2f}s"
