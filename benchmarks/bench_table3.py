"""Benchmark: regenerate Table 3 (best t1 vs quantile guesses)."""

from conftest import run_once

from repro.experiments.table3 import run_table3


def test_table3(benchmark, bench_config):
    result = run_once(benchmark, run_table3, bench_config)
    assert len(result.rows) == 9
    by_name = {r.distribution: r for r in result.rows}
    # Uniform: t1^bf = b, every interior quantile invalid (Theorem 4).
    uni = by_name["uniform"]
    assert abs(uni.t1_bf - 20.0) < 0.2
    assert uni.quantile_cost[0.25] is None
    # LogNormal: t1^bf ~ 30.64 (Table 3), interior quantiles invalid.
    ln = by_name["lognormal"]
    assert abs(ln.t1_bf - 30.64) < 3.0
    assert ln.quantile_cost[0.5] is None
    # Brute-force never loses to a valid quantile guess (beyond noise).
    for row in result.rows:
        for cost in row.quantile_cost.values():
            if cost is not None:
                assert row.cost_bf <= cost * 1.1, row.distribution
