"""Benchmark: extension E4 — in-vivo validation inside the batch queue."""

from conftest import run_once

from repro.experiments.invivo_exp import run_invivo_experiment


def test_ext_invivo(benchmark, bench_config):
    rows = run_once(
        benchmark, run_invivo_experiment, bench_config, 300, 16, 20.0
    )
    by_name = {r.strategy: r for r in rows}
    # The model's ordering survives contact with the real (simulated) queue:
    # DP family < mean_doubling < mean_by_mean/median_by_median.
    assert (
        by_name["equal_probability_dp"].realized_turnaround
        < by_name["mean_doubling"].realized_turnaround
        < by_name["median_by_median"].realized_turnaround
    )
    # Realized attempts track the model's reservation counts.
    assert by_name["equal_probability_dp"].mean_attempts < 1.3
    assert by_name["median_by_median"].mean_attempts > 1.6
    # Model predictions and realized turnarounds agree on the ranking.
    model_rank = sorted(rows, key=lambda r: r.model_normalized)
    vivo_rank = sorted(rows, key=lambda r: r.realized_turnaround)
    assert [r.strategy for r in model_rank][0] in (
        "equal_probability_dp", "equal_time_dp"
    )
    assert [r.strategy for r in vivo_rank][0] in (
        "equal_probability_dp", "equal_time_dp"
    )
