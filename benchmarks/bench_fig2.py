"""Benchmark: regenerate Fig. 2 (wait-time group averages + affine fits)."""

from conftest import run_once

from repro.experiments.fig2 import run_fig2


def test_fig2(benchmark, bench_config):
    result = run_once(benchmark, run_fig2, bench_config, n_jobs=4000)
    assert set(result.panels) == {204, 409}
    p409 = result.panels[409]
    # The 409-processor fit parameterizes NEUROHPC: slope ~0.95.
    assert abs(p409.fitted.slope - 0.95) < 0.15
    assert abs(p409.fitted.intercept - 1.05) < 0.5
    # Wait times increase with requested runtime (the figure's visual claim).
    assert p409.group_wait[-1] > p409.group_wait[0]
    assert len(p409.group_requested) == 20
