"""Benchmark: regenerate Table 2 (7 heuristics x 9 distributions)."""

from conftest import run_once

from repro.experiments.table2 import run_table2


def test_table2(benchmark, bench_config):
    result = run_once(benchmark, run_table2, bench_config)
    # Headline shapes (Section 5.2).  Heavy-tailed rows (Weibull k=0.5,
    # Pareto) have large per-sample cost variance at reduced N, so the
    # RI-vs-OD bound is asserted net of two Monte-Carlo standard errors.
    for dist, row in result.records.items():
        for strat, rec in row.items():
            assert rec.normalized_cost >= 1.0 - 1e-9, (dist, strat)
            lower = (rec.expected_cost - 2.0 * (rec.std_error or 0.0)) / (
                rec.omniscient_cost
            )
            assert lower < 4.0, (dist, strat)
    assert result.normalized("uniform", "brute_force") == 4.0 / 3.0
    # Brute-force is never beaten by more than noise.
    for dist in result.records:
        for strat in result.records[dist]:
            assert result.vs_brute_force(dist, strat) > 0.85, (dist, strat)
