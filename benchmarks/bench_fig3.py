"""Benchmark: regenerate Fig. 3 (cost landscape over t1, all 9 panels)."""

from conftest import run_once

from repro.experiments.fig3 import run_fig3


def test_fig3(benchmark, bench_config):
    result = run_once(benchmark, run_fig3, bench_config, sweep_points=150)
    assert len(result.series) == 9
    # Exponential panel: infeasible gap in the middle band (Fig. 3a).
    exp = result.series["exponential"]
    infeasible_t1 = [p.x for p in exp.points if not p.feasible]
    assert any(0.25 < t < 0.75 for t in infeasible_t1)
    # Uniform panel: only the right endpoint is feasible (Theorem 4).
    uni = result.series["uniform"]
    assert uni.feasible_fraction < 0.05
    assert abs(uni.best_t1 - 20.0) < 0.1
    # Every best point beats (or ties) 1.0 normalized and is feasible.
    for name, s in result.series.items():
        assert s.best_cost >= 1.0 - 1e-9, name
