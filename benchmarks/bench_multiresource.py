"""Benchmark: extension E3 — multi-resource reservations."""

from conftest import run_once

from repro.experiments.multiresource_exp import run_multiresource_experiment


def test_ext_multiresource(benchmark, bench_config):
    rows = run_once(
        benchmark,
        run_multiresource_experiment,
        (0.01, 0.2, 1.0),
        (0.02, 0.2),
        bench_config,
    )
    by_key = {(r.serial_fraction, r.alpha1): r for r in rows}
    for sf in (0.02, 0.2):
        # Crossover: widest request shrinks as parallelism gets pricier.
        widths = [by_key[(sf, a1)].max_processors for a1 in (0.01, 0.2, 1.0)]
        assert widths[0] > widths[-1], sf
        # Costs normalized against the clairvoyant bound stay in band.
        for a1 in (0.01, 0.2, 1.0):
            assert 1.0 <= by_key[(sf, a1)].normalized < 3.0
    # Poor scaling (large serial fraction) narrows requests at equal price.
    assert (
        by_key[(0.2, 0.05)].max_processors <= by_key[(0.02, 0.05)].max_processors
        if (0.2, 0.05) in by_key
        else True
    )
