"""Benchmark: extension E7 — spot vs reserved economics."""

import math

from conftest import run_once

from repro.experiments.spot_exp import run_spot_experiment


def test_ext_spot(benchmark, bench_config):
    rows = run_once(
        benchmark, run_spot_experiment, (0.5, 8.0, 72.0), config=bench_config
    )
    by_mean = {r.mean_hours: r for r in rows}
    # Crossover: short jobs on raw spot, long jobs must checkpoint or reserve.
    assert by_mean[0.5].winner == "spot"
    assert by_mean[72.0].winner != "spot"
    # Restart-from-scratch blows up exponentially with job length.
    assert (
        math.isinf(by_mean[72.0].spot_restart_cost)
        or by_mean[72.0].spot_restart_cost > 100 * by_mean[72.0].reserved_cost
    )
    # Checkpointed spot stays proportional to the work.
    assert by_mean[72.0].spot_checkpointed_cost < 10 * 72.0
