"""Micro-benchmarks of the library's hot paths.

These time the primitives the experiment harness leans on: the vectorized
Monte-Carlo cost engine, the O(n^2) Theorem 5 DP, Eq. (11) sequence
generation, and the Theorem 1 series evaluator.  They guard against
accidental de-vectorization (the hpc-parallel guides' main failure mode).

A full run also writes its timings to ``BENCH_core.json`` at the repo root
(override with the ``BENCH_CORE_JSON`` env var), so successive PRs leave a
comparable trajectory of the core numbers.
"""

import json
import os
import time

import pytest

import numpy as np

from repro import (
    CostModel,
    Exponential,
    LogNormal,
    ReservationSequence,
    expected_cost_series,
    generate_optimal_sequence,
    solve_discrete_dp,
)
from repro.core.sequence import constant_extender
from repro.discretization import equal_probability
from repro.simulation.batch import ReservationBatch, batch_expected_costs
from repro.simulation.monte_carlo import costs_for_times, kernel_costs_and_indices

_TIMINGS = {}


def _record(name, benchmark):
    """Capture a benchmark's summary stats for the BENCH_core.json dump."""
    meta = getattr(benchmark, "stats", None)
    if meta is None:  # --benchmark-disable: nothing was measured
        return
    stats = meta.stats
    _TIMINGS[name] = {
        "mean_s": stats.mean,
        "stddev_s": stats.stddev,
        "min_s": stats.min,
        "max_s": stats.max,
        "rounds": stats.rounds,
    }


@pytest.fixture(scope="module", autouse=True)
def _dump_timings():
    """After the module's benchmarks finish, persist the collected timings."""
    yield
    if not _TIMINGS:
        return
    default = os.path.join(os.path.dirname(__file__), "..", "BENCH_core.json")
    path = os.environ.get("BENCH_CORE_JSON", default)
    payload = {"generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
               "benchmarks": _TIMINGS}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_monte_carlo_engine_100k(benchmark):
    """Vectorized costing of 100k samples against a 30-step ladder."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    times = d.rvs(100_000, seed=0)
    seq = ReservationSequence([d.mean()], extend=constant_extender(d.mean()))
    seq.ensure_covers(float(times.max()))

    out = benchmark(costs_for_times, seq, times, cm)
    assert out.shape == times.shape
    assert float(out.min()) > 0
    _record("monte_carlo_engine_100k", benchmark)


def test_discrete_dp_n1000(benchmark):
    """Theorem 5 DP at the paper's n=1000."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    discrete = equal_probability(d, 1000, 1e-7)

    result = benchmark(solve_discrete_dp, discrete, cm)
    assert result.reservations[-1] == discrete.values[-1]
    _record("discrete_dp_n1000", benchmark)


def test_eq11_sequence_generation(benchmark):
    """Eq. (11) sequence materialization down to survival 1e-12."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()

    values = benchmark(generate_optimal_sequence, 30.64, d, cm)
    assert len(values) >= 3
    _record("eq11_sequence_generation", benchmark)


def test_series_evaluator(benchmark):
    """Theorem 1 series on a mean-spaced ladder (Exponential)."""
    d = Exponential(1.0)
    cm = CostModel(alpha=1.0, beta=1.0, gamma=0.5)

    def run():
        seq = ReservationSequence([1.0], extend=constant_extender(1.0))
        return expected_cost_series(seq, d, cm)

    cost = benchmark(run)
    assert cost > 0
    _record("series_evaluator", benchmark)


def test_sampling_inverse_transform_1m(benchmark):
    """Inverse-transform sampling throughput (1M variates)."""
    d = LogNormal(3.0, 0.5)
    out = benchmark(d.rvs, 1_000_000, 42)
    assert out.shape == (1_000_000,)
    _record("sampling_inverse_transform_1m", benchmark)


def _median_time(fn, repeats):
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))


def test_mc_batch_grid():
    """Batched moments kernel vs a per-sequence loop over a t1 grid.

    This is the brute-force scan's workload: S grid candidates costed
    against one shared sample block.  The batched kernel replaces S python
    round-trips (searchsorted + gather + mean each) with one (S, L) pass,
    and must keep a >=10x single-core win — the guard CI enforces on
    ``BENCH_core.json``.  Timed by hand: pytest-benchmark can't express a
    two-path ratio in one test.
    """
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    times = d.rvs(4_000, seed=3)
    cover = float(times.max())
    t1s = np.linspace(d.quantile(0.05), d.quantile(0.95), 400)
    batch = ReservationBatch.from_grid(t1s, d, cm, cover=cover)
    rows = [batch.row_values(s) for s in range(batch.n_sequences)
            if batch.feasible[s]]

    def looped():
        return [
            float(kernel_costs_and_indices(values, times, cm)[0].mean())
            for values in rows
        ]

    def batched():
        return batch_expected_costs(batch, times, cm)

    # Same numbers before timing them: means agree to kernel regrouping ulps.
    summary = batched()
    loop_means = np.array(looped())
    np.testing.assert_allclose(
        summary.mean_cost[batch.feasible], loop_means, rtol=1e-10
    )

    loop_s = _median_time(looped, repeats=3)
    batch_s = _median_time(batched, repeats=5)
    speedup = loop_s / batch_s if batch_s > 0 else float("inf")
    _TIMINGS["mc_batch_grid"] = {
        "n_sequences": int(batch.n_sequences),
        "n_samples": int(times.size),
        "loop_median_s": loop_s,
        "batch_median_s": batch_s,
        "speedup": speedup,
    }
    assert speedup >= 10.0, (
        f"batched grid costing only {speedup:.1f}x over the python loop"
    )


def test_spot_eval_batch():
    """Vectorized spot Monte-Carlo vs a per-path pure-Python simulator.

    Same semantics on both sides — checkpoint segments, single-uniform
    inverse-transform interruption draws, busy time billed at the constant
    price — so both must sit on the closed form; the vectorized active-set
    stepping must keep a >=5x win (guarded in CI off ``BENCH_core.json``).
    Timed by hand like ``test_mc_batch_grid``: the ratio needs both paths.
    """
    import math

    from repro.extensions.spot import expected_spot_time_checkpointed
    from repro.platforms.spot import ConstantHazard, ConstantPrice, SpotScenario
    from repro.platforms.spot.evaluator import spot_monte_carlo_cost

    job, rate, price = 2.0, 0.8, 0.3
    tau, overhead, dt = 0.5, 0.05, 0.05
    n_paths = 2048
    scenario = SpotScenario(
        price=ConstantPrice(price),
        hazard=ConstantHazard(rate),
        checkpoint_overhead=overhead,
        step=dt,
    )
    # ceil(job/tau) segments: full ones tau+overhead, final one the leftover.
    m = math.ceil(job / tau)
    segments = [tau + overhead] * (m - 1) + [job - (m - 1) * tau]

    def vectorized():
        return spot_monte_carlo_cost(
            job,
            scenario,
            recovery="checkpoint",
            checkpoint_interval=tau,
            n_paths=n_paths,
            seed=123,
        )

    def looped():
        rng = np.random.default_rng(123)
        total = 0.0
        for _ in range(n_paths):
            busy = 0.0
            for seg_len in segments:
                rem = seg_len
                while True:
                    delta = min(dt, rem)
                    u = rng.random()
                    if u < -math.expm1(-rate * delta):
                        busy += -math.log1p(-u) / rate
                        rem = seg_len
                    else:
                        busy += delta
                        rem -= delta
                        if rem <= 0.0:
                            break
            total += price * busy
        return total / n_paths

    # Same numbers before timing: both estimators sit on the closed form.
    closed = price * expected_spot_time_checkpointed(job, rate, tau, overhead)
    vec = vectorized()
    loop_mean = looped()
    band = 8.0 * vec.std_error
    assert abs(vec.mean_cost - closed) <= band, (vec.mean_cost, closed)
    assert abs(loop_mean - closed) <= band, (loop_mean, closed)

    loop_s = _median_time(looped, repeats=3)
    vec_s = _median_time(vectorized, repeats=5)
    speedup = loop_s / vec_s if vec_s > 0 else float("inf")
    _TIMINGS["spot_eval_batch"] = {
        "n_paths": n_paths,
        "loop_median_s": loop_s,
        "vectorized_median_s": vec_s,
        "speedup": speedup,
    }
    assert speedup >= 5.0, (
        f"vectorized spot evaluator only {speedup:.1f}x over the per-path loop"
    )
