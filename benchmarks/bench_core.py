"""Micro-benchmarks of the library's hot paths.

These time the primitives the experiment harness leans on: the vectorized
Monte-Carlo cost engine, the O(n^2) Theorem 5 DP, Eq. (11) sequence
generation, and the Theorem 1 series evaluator.  They guard against
accidental de-vectorization (the hpc-parallel guides' main failure mode).

A full run also writes its timings to ``BENCH_core.json`` at the repo root
(override with the ``BENCH_CORE_JSON`` env var), so successive PRs leave a
comparable trajectory of the core numbers.
"""

import json
import os
import time

import pytest

import numpy as np

from repro import (
    CostModel,
    Exponential,
    LogNormal,
    ReservationSequence,
    expected_cost_series,
    generate_optimal_sequence,
    solve_discrete_dp,
)
from repro.core.sequence import constant_extender
from repro.discretization import equal_probability
from repro.simulation.batch import ReservationBatch, batch_expected_costs
from repro.simulation.monte_carlo import costs_for_times, kernel_costs_and_indices

_TIMINGS = {}


def _record(name, benchmark):
    """Capture a benchmark's summary stats for the BENCH_core.json dump."""
    meta = getattr(benchmark, "stats", None)
    if meta is None:  # --benchmark-disable: nothing was measured
        return
    stats = meta.stats
    _TIMINGS[name] = {
        "mean_s": stats.mean,
        "stddev_s": stats.stddev,
        "min_s": stats.min,
        "max_s": stats.max,
        "rounds": stats.rounds,
    }


@pytest.fixture(scope="module", autouse=True)
def _dump_timings():
    """After the module's benchmarks finish, persist the collected timings."""
    yield
    if not _TIMINGS:
        return
    default = os.path.join(os.path.dirname(__file__), "..", "BENCH_core.json")
    path = os.environ.get("BENCH_CORE_JSON", default)
    payload = {"generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
               "benchmarks": _TIMINGS}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_monte_carlo_engine_100k(benchmark):
    """Vectorized costing of 100k samples against a 30-step ladder."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    times = d.rvs(100_000, seed=0)
    seq = ReservationSequence([d.mean()], extend=constant_extender(d.mean()))
    seq.ensure_covers(float(times.max()))

    out = benchmark(costs_for_times, seq, times, cm)
    assert out.shape == times.shape
    assert float(out.min()) > 0
    _record("monte_carlo_engine_100k", benchmark)


def test_discrete_dp_n1000(benchmark):
    """Theorem 5 DP at the paper's n=1000."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    discrete = equal_probability(d, 1000, 1e-7)

    result = benchmark(solve_discrete_dp, discrete, cm)
    assert result.reservations[-1] == discrete.values[-1]
    _record("discrete_dp_n1000", benchmark)


def test_eq11_sequence_generation(benchmark):
    """Eq. (11) sequence materialization down to survival 1e-12."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()

    values = benchmark(generate_optimal_sequence, 30.64, d, cm)
    assert len(values) >= 3
    _record("eq11_sequence_generation", benchmark)


def test_series_evaluator(benchmark):
    """Theorem 1 series on a mean-spaced ladder (Exponential)."""
    d = Exponential(1.0)
    cm = CostModel(alpha=1.0, beta=1.0, gamma=0.5)

    def run():
        seq = ReservationSequence([1.0], extend=constant_extender(1.0))
        return expected_cost_series(seq, d, cm)

    cost = benchmark(run)
    assert cost > 0
    _record("series_evaluator", benchmark)


def test_sampling_inverse_transform_1m(benchmark):
    """Inverse-transform sampling throughput (1M variates)."""
    d = LogNormal(3.0, 0.5)
    out = benchmark(d.rvs, 1_000_000, 42)
    assert out.shape == (1_000_000,)
    _record("sampling_inverse_transform_1m", benchmark)


def _median_time(fn, repeats):
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))


def test_mc_batch_grid():
    """Batched moments kernel vs a per-sequence loop over a t1 grid.

    This is the brute-force scan's workload: S grid candidates costed
    against one shared sample block.  The batched kernel replaces S python
    round-trips (searchsorted + gather + mean each) with one (S, L) pass,
    and must keep a >=10x single-core win — the guard CI enforces on
    ``BENCH_core.json``.  Timed by hand: pytest-benchmark can't express a
    two-path ratio in one test.
    """
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    times = d.rvs(4_000, seed=3)
    cover = float(times.max())
    t1s = np.linspace(d.quantile(0.05), d.quantile(0.95), 400)
    batch = ReservationBatch.from_grid(t1s, d, cm, cover=cover)
    rows = [batch.row_values(s) for s in range(batch.n_sequences)
            if batch.feasible[s]]

    def looped():
        return [
            float(kernel_costs_and_indices(values, times, cm)[0].mean())
            for values in rows
        ]

    def batched():
        return batch_expected_costs(batch, times, cm)

    # Same numbers before timing them: means agree to kernel regrouping ulps.
    summary = batched()
    loop_means = np.array(looped())
    np.testing.assert_allclose(
        summary.mean_cost[batch.feasible], loop_means, rtol=1e-10
    )

    loop_s = _median_time(looped, repeats=3)
    batch_s = _median_time(batched, repeats=5)
    speedup = loop_s / batch_s if batch_s > 0 else float("inf")
    _TIMINGS["mc_batch_grid"] = {
        "n_sequences": int(batch.n_sequences),
        "n_samples": int(times.size),
        "loop_median_s": loop_s,
        "batch_median_s": batch_s,
        "speedup": speedup,
    }
    assert speedup >= 10.0, (
        f"batched grid costing only {speedup:.1f}x over the python loop"
    )
