"""Micro-benchmarks of the library's hot paths.

These time the primitives the experiment harness leans on: the vectorized
Monte-Carlo cost engine, the O(n^2) Theorem 5 DP, Eq. (11) sequence
generation, and the Theorem 1 series evaluator.  They guard against
accidental de-vectorization (the hpc-parallel guides' main failure mode).

A full run also writes its timings to ``BENCH_core.json`` at the repo root
(override with the ``BENCH_CORE_JSON`` env var), so successive PRs leave a
comparable trajectory of the core numbers.
"""

import json
import os
import time

import pytest

import numpy as np

from repro import (
    CostModel,
    Exponential,
    LogNormal,
    ReservationSequence,
    expected_cost_series,
    generate_optimal_sequence,
    solve_discrete_dp,
)
from repro.core.sequence import constant_extender
from repro.discretization import equal_probability
from repro.simulation.monte_carlo import costs_for_times

_TIMINGS = {}


def _record(name, benchmark):
    """Capture a benchmark's summary stats for the BENCH_core.json dump."""
    meta = getattr(benchmark, "stats", None)
    if meta is None:  # --benchmark-disable: nothing was measured
        return
    stats = meta.stats
    _TIMINGS[name] = {
        "mean_s": stats.mean,
        "stddev_s": stats.stddev,
        "min_s": stats.min,
        "max_s": stats.max,
        "rounds": stats.rounds,
    }


@pytest.fixture(scope="module", autouse=True)
def _dump_timings():
    """After the module's benchmarks finish, persist the collected timings."""
    yield
    if not _TIMINGS:
        return
    default = os.path.join(os.path.dirname(__file__), "..", "BENCH_core.json")
    path = os.environ.get("BENCH_CORE_JSON", default)
    payload = {"generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
               "benchmarks": _TIMINGS}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_monte_carlo_engine_100k(benchmark):
    """Vectorized costing of 100k samples against a 30-step ladder."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    times = d.rvs(100_000, seed=0)
    seq = ReservationSequence([d.mean()], extend=constant_extender(d.mean()))
    seq.ensure_covers(float(times.max()))

    out = benchmark(costs_for_times, seq, times, cm)
    assert out.shape == times.shape
    assert float(out.min()) > 0
    _record("monte_carlo_engine_100k", benchmark)


def test_discrete_dp_n1000(benchmark):
    """Theorem 5 DP at the paper's n=1000."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()
    discrete = equal_probability(d, 1000, 1e-7)

    result = benchmark(solve_discrete_dp, discrete, cm)
    assert result.reservations[-1] == discrete.values[-1]
    _record("discrete_dp_n1000", benchmark)


def test_eq11_sequence_generation(benchmark):
    """Eq. (11) sequence materialization down to survival 1e-12."""
    d = LogNormal(3.0, 0.5)
    cm = CostModel.reservation_only()

    values = benchmark(generate_optimal_sequence, 30.64, d, cm)
    assert len(values) >= 3
    _record("eq11_sequence_generation", benchmark)


def test_series_evaluator(benchmark):
    """Theorem 1 series on a mean-spaced ladder (Exponential)."""
    d = Exponential(1.0)
    cm = CostModel(alpha=1.0, beta=1.0, gamma=0.5)

    def run():
        seq = ReservationSequence([1.0], extend=constant_extender(1.0))
        return expected_cost_series(seq, d, cm)

    cost = benchmark(run)
    assert cost > 0
    _record("series_evaluator", benchmark)


def test_sampling_inverse_transform_1m(benchmark):
    """Inverse-transform sampling throughput (1M variates)."""
    d = LogNormal(3.0, 0.5)
    out = benchmark(d.rvs, 1_000_000, 42)
    assert out.shape == (1_000_000,)
    _record("sampling_inverse_transform_1m", benchmark)
