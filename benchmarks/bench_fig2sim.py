"""Benchmark: Fig. 2 from first principles (batch-queue simulator)."""

from conftest import run_once

from repro.experiments.fig2sim import run_fig2sim


def test_fig2sim(benchmark, bench_config):
    result = run_once(benchmark, run_fig2sim, bench_config, n_jobs=2000)
    easy = result.panels["easy_backfill"]
    fcfs = result.panels["fcfs"]
    # Emergent Fig. 2 behaviour: positive slope under backfilling, and a
    # stronger requested-runtime penalty (relative slope) than FCFS.
    assert easy.fitted.slope > 0.2
    assert easy.relative_slope > fcfs.relative_slope
    # Backfilling also improves both wait and utilization.
    assert easy.stats.mean_wait < fcfs.stats.mean_wait
    assert easy.stats.utilization > fcfs.stats.utilization
