"""Benchmark: extension E5 — planning under model misspecification."""

from conftest import run_once

from repro.experiments.misspecification_exp import run_misspecification_experiment


def test_ext_misspecification(benchmark, bench_config):
    rows = run_once(
        benchmark,
        run_misspecification_experiment,
        (0.0, 2.0, 3.0),
        1500,
        bench_config,
    )
    by_gap = {r.gap: r for r in rows}
    # Well specified: all three plans equivalent.
    assert abs(by_gap[0.0].misspecification_premium) < 0.10
    # Strongly bimodal: the LogNormal fit pays a large premium...
    assert by_gap[3.0].misspecification_premium > 0.20
    # ...while planning on the raw trace stays near the oracle.
    assert by_gap[3.0].empirical_premium < 0.10
    # Premium grows with the mode separation.
    assert (
        by_gap[3.0].misspecification_premium
        > by_gap[2.0].misspecification_premium
        > by_gap[0.0].misspecification_premium
    )
