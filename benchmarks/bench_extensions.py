"""Benchmarks: extension experiments E1 (convex costs) and E2 (checkpointing)."""

from conftest import run_once

from repro.experiments.extensions_exp import (
    run_checkpoint_experiment,
    run_convex_experiment,
)


def test_ext_convex(benchmark, bench_config):
    rows = run_once(
        benchmark,
        run_convex_experiment,
        (0.1, 1.0),
        ("exponential", "lognormal", "uniform"),
        bench_config,
        200,
    )
    assert len(rows) == 6
    # Uniform: Theorem 4 generalizes — the singleton (b) stays optimal.
    for r in rows:
        if r.distribution == "uniform":
            assert abs(r.best_t1 - 20.0) < 0.2
            assert r.sequence_len == 1
        assert r.normalized >= 1.0


def test_ext_checkpoint(benchmark, bench_config):
    rows = run_once(
        benchmark,
        run_checkpoint_experiment,
        (0.0, 0.25, 1.0),
        ("exponential", "lognormal"),
        bench_config,
    )
    by_key = {(r.distribution, r.overhead): r for r in rows}
    for dist in ("exponential", "lognormal"):
        # Zero-overhead checkpointing is a large win over restart-from-scratch.
        assert by_key[(dist, 0.0)].improvement > 0.2, dist
        # Benefits decay as the overhead grows.
        assert (
            by_key[(dist, 0.0)].checkpoint_cost
            < by_key[(dist, 0.25)].checkpoint_cost
            < by_key[(dist, 1.0)].checkpoint_cost
        ), dist
