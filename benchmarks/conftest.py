"""Benchmark configuration.

Each paper artifact (table/figure) gets one benchmark module that runs the
corresponding experiment end-to-end at a reduced-but-representative
configuration and verifies its headline shape, so `pytest benchmarks/
--benchmark-only` both times the harness and re-checks the reproduction.
"""

import pytest

from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config():
    """Scaled-down configuration: every qualitative conclusion survives,
    and a full benchmark pass stays under a couple of minutes."""
    return ExperimentConfig(m_grid=200, n_samples=500, n_discrete=200, seed=2019)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once per round (they are seconds-scale, not
    microseconds-scale)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1)
